// Optimistic parallel batch provisioning with footprint-validated commits.
//
// §2 fixes the operating model: a batch of connection requests per interval,
// processed one by one against the evolving residual network. provision_batch
// reproduces that serially; ParallelBatchEngine produces the *same answer* —
// bit-for-bit identical accept/drop decisions, routes, reservations, and
// costs for every BatchOrder policy — while routing speculatively on a
// worker pool.
//
// Protocol (snapshot / speculate / validate / commit):
//
//   1. SNAPSHOT. The engine publishes an immutable copy of the live network
//      (`spec snapshot`). Snapshots come from a small pool and are refreshed
//      in place via WdmNetwork::sync_residual_from, which touches only the
//      links that changed and bumps only their link_revision counters — so
//      the AuxGraphBuilders warm inside each router's pool keep their
//      revision-validated caches across epochs.
//   2. SPECULATE. Workers claim requests in policy order (work-stealing
//      cursor plus a retry queue, bounded `window` past the commit frontier)
//      and route them against the current snapshot, recording each call's
//      RouteFootprint — the read set of the routing decision.
//   3. VALIDATE + COMMIT. A single commit thread (the caller) finalizes
//      requests strictly in policy order. A speculative result is valid iff
//      its footprint proves that re-running the router against the live
//      network would reproduce it bit-for-bit: no committed route since the
//      speculation's snapshot wrote a link whose exact residual state it read
//      (the refinement masks), semantically changed the G' cost channel
//      (mean available weights / transit-pair means / usable-set membership),
//      or crossed its recorded load bands (ϑ_min/ϑ_max stamps, probe ladder,
//      accepted-ϑ membership) — see rwa/footprint.hpp. Routers that record
//      no footprint validate the old way: epoch-exact (zero accepts since
//      the snapshot).
//   4. CONFLICT. Each accepted commit records its write set with the
//      validator, proactively invalidates only the published speculations
//      whose footprints it intersects (counted as conflicts) and queues them
//      for re-speculation against the fresh snapshot (counted as retries,
//      bounded by max_speculation_retries); untouched speculations stay
//      valid across the commit — the footprint hits that let accept-heavy
//      batches scale instead of serializing. When the head request has no
//      usable speculation and none in flight, the commit thread routes it
//      itself against the live network.
//
// Why this is exact rather than approximate: acceptance itself is always
// decided by rwa::detail::commit_route against the *live* network, the same
// helper the serial loop runs; speculation only decides which route gets
// proposed, and a proposal is used only when its footprint (or, for opaque
// footprints, revision-exact snapshot equality) proves the live network
// would yield the same proposal. A naive per-link read set is NOT sufficient
// here — the auxiliary-graph routers read every link — which is why
// footprints are expressed in the routers' derived quantities; the soundness
// argument lives in DESIGN.md §5 and rwa/footprint.hpp.
#pragma once

#include <memory>
#include <vector>

#include "rwa/batch.hpp"
#include "rwa/router.hpp"
#include "support/rng.hpp"

namespace wdm::rwa {

struct ParallelBatchOptions {
  /// Worker threads routing speculatively. <= 0 picks
  /// support::hardware_threads(); <= 1 short-circuits to the serial
  /// provision_batch path (identical by construction, no snapshot pool or
  /// worker machinery spun up).
  int threads = 0;
  /// Max requests speculated past the commit frontier. <= 0 picks
  /// 4 * threads. Larger windows salvage longer drop runs per snapshot;
  /// smaller ones waste less work when accepts are dense.
  int window = 0;
  /// A request whose speculation went stale this many times is left to the
  /// commit thread (serial fallback) instead of being re-speculated.
  int max_speculation_retries = 3;
  /// Ignore footprints and validate every speculation epoch-exactly (the
  /// pre-footprint behavior). The differential test suites run both modes
  /// against serial to prove footprint validation changes performance only,
  /// never outcomes.
  bool force_epoch_validation = false;
};

/// Counters for the engine's speculation machinery. For every completed
/// (exception-free) sequence of run() calls these reconcile exactly:
///
///   spec_commits + commit_reroutes == requests routed by the parallel path
///   speculations == spec_commits + conflicts + spec_discarded
///   snapshot_syncs + snapshot_copies == epochs + runs
///
/// (`runs` counts parallel-path run() calls only; serial-path calls touch
/// nothing but `requests` and `serial_runs`. Each parallel run publishes one
/// initial snapshot plus one per accepted commit = per-epoch.) The unit test
/// ParallelBatchStatsReconcile asserts all three after every batch.
struct ParallelBatchStats {
  long long requests = 0;
  long long runs = 0;              // run() calls that took the parallel path
  long long serial_runs = 0;       // run() calls delegated to provision_batch
  long long speculations = 0;      // worker route() calls that landed
  long long spec_commits = 0;      // finalized from a valid speculative result
  long long footprint_hits = 0;    // ... of which survived >= 1 commit (wins
                                   // epoch validation could never keep)
  long long conflicts = 0;         // speculations invalidated by a commit
  long long spec_discarded = 0;    // landed after their slot was finalized
                                   // (or the run was stopping): never judged
  long long retries = 0;           // re-speculation claims after a conflict
  long long commit_reroutes = 0;   // routed on the commit thread instead
  long long serial_fallbacks = 0;  // ... of which had exhausted the retry
                                   // budget
  long long epochs = 0;            // accepted commits = snapshot republishes
  long long snapshot_syncs = 0;    // snapshots refreshed in place (cheap)
  long long snapshot_copies = 0;   // snapshots deep-copied (pool growth)

  /// Fraction of speculative route computations wasted on stale state.
  double conflict_rate() const {
    return speculations > 0
               ? static_cast<double>(conflicts) /
                     static_cast<double>(speculations)
               : 0.0;
  }
  /// Fraction of requests finalized straight from a speculative result.
  double spec_hit_rate() const {
    return requests > 0 ? static_cast<double>(spec_commits) /
                              static_cast<double>(requests)
                        : 0.0;
  }
  /// Fraction of speculative commits that outlived at least one intervening
  /// accept — the work epoch validation would have thrown away.
  double footprint_hit_rate() const {
    return spec_commits > 0 ? static_cast<double>(footprint_hits) /
                                  static_cast<double>(spec_commits)
                            : 0.0;
  }
};

/// Reusable engine: keeps its snapshot pool (and thus stable snapshot uids,
/// which keep router-side AuxGraphBuilder caches warm) across run() calls on
/// the same base network — the simulator's per-interval pattern. Not itself
/// thread-safe: one engine per provisioning stream.
class ParallelBatchEngine {
 public:
  explicit ParallelBatchEngine(ParallelBatchOptions opt = {});
  ~ParallelBatchEngine();

  ParallelBatchEngine(const ParallelBatchEngine&) = delete;
  ParallelBatchEngine& operator=(const ParallelBatchEngine&) = delete;

  /// Provisions the batch against `net` (mutated exactly as provision_batch
  /// would mutate it). `rng` is required for BatchOrder::kRandom and is
  /// consumed identically to the serial path. The caller must not touch
  /// `net` until run() returns.
  BatchOutcome run(net::WdmNetwork& net, const Router& router,
                   const std::vector<BatchRequest>& batch,
                   BatchOrder order = BatchOrder::kArrival,
                   support::Rng* rng = nullptr);

  /// Counters for the run() calls since construction (cumulative).
  const ParallelBatchStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

  /// The thread count run() will actually use (resolved from options).
  int resolved_threads() const;

 private:
  struct SnapshotPool;

  ParallelBatchOptions opt_;
  ParallelBatchStats stats_;
  std::unique_ptr<SnapshotPool> pool_;
};

}  // namespace wdm::rwa
