// §4.2 — the paper's headline router: minimize network load AND routing cost.
//
// Phase 1 runs Find_Two_Paths_MinCog to obtain a feasible load threshold ϑ.
// Phase 2 rebuilds the auxiliary graph as G_rc(ϑ) — same ϑ-filtered topology
// as G_c, but with the cost weights of G' — runs Suurballe on it, and
// refines each returned path with the optimal-semilightpath solver in its
// induced subgraph. The result is a cheapest-available pair among the routes
// that respect the (approximately) minimum achievable congestion, which is
// what cuts the reconfiguration count in the E6/E7 simulations.
#pragma once

#include "rwa/mincog.hpp"
#include "rwa/route_scratch.hpp"
#include "rwa/router.hpp"

namespace wdm::rwa {

class LoadCostRouter final : public Router {
 public:
  /// `grc_mean_over_available` switches the G_rc link weight from the
  /// paper's Σw/N(e) to the true mean Σw/|Λ_avail(e)| (ablation).
  /// `policy`: kSrlg keeps the phase-1 ϑ search (edge-disjoint feasibility)
  /// and applies the SRLG conflict-set stage to the final G_rc(ϑ); a request
  /// SRLG-routable only above that ϑ is blocked (documented limitation).
  explicit LoadCostRouter(MinCogOptions opt = {},
                          bool grc_mean_over_available = false,
                          net::ProtectPolicy policy = net::ProtectPolicy::full())
      : opt_(opt), grc_mean_over_available_(grc_mean_over_available),
        policy_(policy) {}

  RouteResult route(const net::WdmNetwork& net, net::NodeId s,
                    net::NodeId t) const override {
    return route(net, s, t, nullptr);
  }

  /// Records a load-band footprint: ϑ_min/ϑ_max, the MinCog probe ladder,
  /// the accepted ϑ (its G_c/G_rc members are protected), and the induced
  /// refinement masks as exact links. kLinearScan stays opaque — its probe
  /// grid contains every link's load boundary, so any write moves it.
  RouteResult route(const net::WdmNetwork& net, net::NodeId s, net::NodeId t,
                    RouteFootprint* fp) const override;

  std::string name() const override {
    return grc_mean_over_available_ ? "load+cost(mean-avail)"
                                    : "load+cost(§4.2)";
  }

 private:
  MinCogOptions opt_;
  bool grc_mean_over_available_;
  net::ProtectPolicy policy_;
  /// One leased scratch serves both phases of a route() call: the G_c(ϑ)
  /// probes and the final G_rc(ϑ) share the builder's stable arena and
  /// conversion-mean cache, and phase 2 reuses the warm Suurballe trees.
  mutable RouteScratchPool scratch_;
};

}  // namespace wdm::rwa
