#include "rwa/loadcost_router.hpp"

#include <algorithm>

#include "graph/suurballe.hpp"
#include "rwa/layered_graph.hpp"
#include "rwa/srlg.hpp"
#include "support/check.hpp"
#include "support/telemetry.hpp"

namespace wdm::rwa {

RouteResult LoadCostRouter::route(const net::WdmNetwork& net, net::NodeId s,
                                  net::NodeId t,
                                  RouteFootprint* fp) const {
  if (fp != nullptr) fp->mark_opaque();
  if (policy_.kind == net::ProtectKind::kPartial) {
    return route_partial(net, s, t, policy_.threshold);
  }
  WDM_TEL_COUNT("rwa.loadcost.attempts");
  WDM_TEL_SPAN(tel_span, "rwa.loadcost.route");
  support::telemetry::SplitTimer tel;
  RouteResult result;
  result.route.policy = policy_;
  const bool srlg_path =
      policy_.kind == net::ProtectKind::kSrlg && net.num_srlgs() > 0;
  const bool band_footprint =
      fp != nullptr && !srlg_path && opt_.search != ThetaSearch::kLinearScan;
  auto sc = scratch_.lease(net);

  // Phase 1: minimum feasible network-load threshold. Probes go through the
  // scratch builder's stable arena so phase 2 (and the next request) finds
  // the universe structure intact.
  MinCogOptions mopt = opt_;
  mopt.stable_arena = true;
  const MinCogResult mc =
      find_two_paths_mincog(net, s, t, mopt, &sc->builder);
  result.theta = mc.theta;
  result.theta_iterations = mc.iterations;
  if (band_footprint) {
    fp->begin();
    fp->load_semantics = true;
    fp->theta_min = net.theta_min();
    fp->theta_max = net.theta_max();
    fp->theta_probes = mc.probes;
    if (mc.found) fp->theta_accepted = mc.theta;
  }
  tel.split(WDM_TEL_HIST("rwa.loadcost.theta_search_ns"),
            WDM_TEL_NAME("rwa.loadcost.theta_search"));
  WDM_TEL_COUNT_N("rwa.loadcost.theta_probes", mc.iterations);
  if (!mc.found) {
    WDM_TEL_COUNT("rwa.loadcost.blocked");
    tel.total(WDM_TEL_HIST("rwa.loadcost.route_ns"));
    return result;
  }

  // Phase 2: cost-weighted routing restricted to links below ϑ.
  AuxGraphOptions aopt;
  aopt.weighting = AuxWeighting::kCostLoadFiltered;
  aopt.theta = mc.theta;
  aopt.grc_mean_over_available = grc_mean_over_available_;
  aopt.stable_arena = true;
  const AuxGraph& aux = sc->builder.build(net, s, t, aopt);
  sc->sync_suurballe_generation();
  tel.split(WDM_TEL_HIST("rwa.loadcost.aux_build_ns"),
            WDM_TEL_NAME("rwa.loadcost.aux_build"));
  if (srlg_path) {
    SrlgPairResult sp = srlg_disjoint_pair(net, aux);
    sc->pair = std::move(sp.pair);
    result.srlg_exhaustive = sp.exhaustive;
  } else {
    const graph::WeightPatchFeed feed = sc->builder.patch_feed();
    sc->suurballe.solve_into(aux.g, aux.w, aux.s_prime, aux.t_second,
                             /*tree_key=*/static_cast<std::uint64_t>(s),
                             &sc->pair, &feed);
  }
  graph::DisjointPair& pair = sc->pair;
  tel.split(WDM_TEL_HIST("rwa.loadcost.suurballe_ns"),
            WDM_TEL_NAME("rwa.loadcost.suurballe"));
  // G_rc(ϑ) has the same topology as the G_c(ϑ) phase 1 accepted, so a pair
  // must exist; guard anyway for robustness.
  if (!pair.found) {
    WDM_TEL_COUNT("rwa.loadcost.blocked");
    tel.total(WDM_TEL_HIST("rwa.loadcost.route_ns"));
    return result;
  }
  result.aux_cost = pair.total_cost();

  aux.induced_link_mask_into(pair.first, net.num_links(), &sc->mask1);
  aux.induced_link_mask_into(pair.second, net.num_links(), &sc->mask2);
  if (fp != nullptr && !fp->opaque) {
    fp->add_exact_mask(sc->mask1);
    fp->add_exact_mask(sc->mask2);
  }
  net::Semilightpath p1 = optimal_semilightpath(net, s, t, sc->mask1);
  net::Semilightpath p2 = optimal_semilightpath(net, s, t, sc->mask2);
  tel.split(WDM_TEL_HIST("rwa.loadcost.liang_shen_ns"),
            WDM_TEL_NAME("rwa.loadcost.liang_shen"));
  tel.total(WDM_TEL_HIST("rwa.loadcost.route_ns"));
  if (!p1.found || !p2.found) {
    WDM_TEL_COUNT("rwa.loadcost.blocked");
    return result;
  }
  WDM_DCHECK(net::edge_disjoint(p1, p2));
  WDM_TEL_COUNT("rwa.loadcost.found");
  if (p2.cost(net) < p1.cost(net)) std::swap(p1, p2);
  result.found = true;
  result.route.found = true;
  result.route.primary = std::move(p1);
  result.route.backup = std::move(p2);
  return result;
}

}  // namespace wdm::rwa
