#include "rwa/footprint.hpp"

#include <algorithm>

#include "rwa/aux_graph.hpp"
#include "support/check.hpp"

namespace wdm::rwa {

namespace {

/// (U(e)+1)/N(e), bitwise the term WdmNetwork::theta_min/theta_max range
/// over — the validator's band rules must agree with the network's ϑ bounds
/// exactly, not up to rounding.
double next_load(const net::WdmNetwork& net, graph::EdgeId e) {
  return static_cast<double>(net.usage(e) + 1) /
         static_cast<double>(net.capacity(e));
}

}  // namespace

void FootprintValidator::begin_run(const net::WdmNetwork& net) {
  pre_.clear();
  scratch_links_.clear();
  deltas_.clear();
  last_write_epoch_.assign(static_cast<std::size_t>(net.num_links()), 0);
  last_cost_change_epoch_ = 0;
  latest_epoch_ = 0;
}

void FootprintValidator::capture_link(const net::WdmNetwork& net,
                                      graph::EdgeId e, LinkPre* into) const {
  into->link = e;
  into->empty = net.available(e).count() == 0;
  into->mean_weight = into->empty ? 0.0 : net.mean_available_weight(e);
  into->load = net.link_load(e);
  into->next_load = next_load(net, e);
  into->pairs.clear();
  // Every transit pair that reads Λ_avail(e): e as the in-link of its head
  // node, then e as the out-link of its tail node. Adjacency is immutable
  // during a run, so pre/post captures align elementwise.
  const graph::Digraph& g = net.graph();
  for (graph::EdgeId o : g.out_edges(g.head(e))) {
    PairPre p;
    p.has = mean_conversion_cost(net, g.head(e), e, o, &p.mean);
    into->pairs.push_back(p);
  }
  for (graph::EdgeId i : g.in_edges(g.tail(e))) {
    PairPre p;
    p.has = mean_conversion_cost(net, g.tail(e), i, e, &p.mean);
    into->pairs.push_back(p);
  }
}

void FootprintValidator::capture_pre(const net::WdmNetwork& net,
                                     const net::ProtectedRoute& r) {
  scratch_links_.clear();
  for (const net::Hop& h : r.primary.hops) scratch_links_.push_back(h.edge);
  for (const net::Hop& h : r.backup.hops) scratch_links_.push_back(h.edge);
  std::sort(scratch_links_.begin(), scratch_links_.end());
  scratch_links_.erase(
      std::unique(scratch_links_.begin(), scratch_links_.end()),
      scratch_links_.end());

  pre_.resize(scratch_links_.size());
  for (std::size_t i = 0; i < scratch_links_.size(); ++i) {
    capture_link(net, scratch_links_[i], &pre_[i]);
  }
}

void FootprintValidator::discard_pre() { pre_.clear(); }

void FootprintValidator::commit(const net::WdmNetwork& net,
                                std::uint64_t epoch) {
  WDM_CHECK(epoch > latest_epoch_);
  CommitDelta delta;
  delta.epoch = epoch;
  bool cost_changed = false;
  LinkPre post;
  for (const LinkPre& was : pre_) {
    capture_link(net, was.link, &post);
    if (was.empty != post.empty) {
      // Usable-set membership flipped: the G' edge-node layout itself moved.
      cost_changed = true;
    } else if (!was.empty && was.mean_weight != post.mean_weight) {
      cost_changed = true;
    }
    WDM_DCHECK(was.pairs.size() == post.pairs.size());
    for (std::size_t i = 0; i < was.pairs.size() && !cost_changed; ++i) {
      if (was.pairs[i].has != post.pairs[i].has ||
          (was.pairs[i].has && was.pairs[i].mean != post.pairs[i].mean)) {
        cost_changed = true;
      }
    }
    delta.links.push_back({was.link, was.load, post.load, was.next_load,
                           post.next_load});
    last_write_epoch_[static_cast<std::size_t>(was.link)] = epoch;
  }
  if (cost_changed) last_cost_change_epoch_ = epoch;
  latest_epoch_ = epoch;
  deltas_.push_back(std::move(delta));
  pre_.clear();
}

bool FootprintValidator::valid(const RouteFootprint& fp,
                               std::uint64_t base_epoch) const {
  if (base_epoch >= latest_epoch_) return true;  // nothing committed since
  if (fp.opaque) return false;
  if (fp.cost_semantics && last_cost_change_epoch_ > base_epoch) return false;
  for (graph::EdgeId e : fp.exact_links) {
    if (last_write_epoch_[static_cast<std::size_t>(e)] > base_epoch) {
      return false;
    }
  }
  if (fp.load_semantics) {
    // Deltas are appended in strictly increasing epoch order; only the ones
    // after the speculation's snapshot matter, so scan from the back.
    for (auto it = deltas_.rbegin();
         it != deltas_.rend() && it->epoch > base_epoch; ++it) {
      for (const LinkWriteDelta& d : it->links) {
        // Member of the accepted G_c/G_rc (load < ϑ_accepted) was written:
        // its weight, membership, or transit means may have moved. False for
        // NaN (dropped request: no members to protect).
        if (d.load_before < fp.theta_accepted) return false;
        // ϑ_max rose past the recorded stamp, so the probe ladder moves.
        if (d.next_load_after > fp.theta_max) return false;
        // The written link sat at the recorded ϑ_min; the minimum may rise.
        if (d.next_load_before <= fp.theta_min) return false;
        // A probed G_c(ϑ) gained/lost this link. Redundant while commits
        // only reserve (membership shrinks monotonically, so infeasible
        // probes stay infeasible and members are caught above), but kept as
        // a cheap belt-and-braces for future release-in-batch workloads.
        for (double p : fp.theta_probes) {
          if ((d.load_before < p) != (d.load_after < p)) return false;
        }
      }
    }
  }
  return true;
}

}  // namespace wdm::rwa
