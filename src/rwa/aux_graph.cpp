#include "rwa/aux_graph.hpp"

#include <cmath>

#include "support/check.hpp"
#include "support/telemetry.hpp"

namespace wdm::rwa {

using graph::EdgeId;
using graph::NodeId;

bool mean_conversion_cost(const net::WdmNetwork& net, net::NodeId v,
                          graph::EdgeId in_link, graph::EdgeId out_link,
                          double* mean_out) {
  const auto& table = net.conversion(v);
  const net::WavelengthSet from = net.available(in_link);
  const net::WavelengthSet to = net.available(out_link);
  double sum = 0.0;
  int pairs = 0;
  from.for_each([&](net::Wavelength a) {
    to.for_each([&](net::Wavelength b) {
      if (table.allowed(a, b)) {
        sum += table.cost(a, b);
        ++pairs;
      }
    });
  });
  if (pairs == 0) return false;
  if (mean_out != nullptr) *mean_out = sum / pairs;
  return true;
}

void AuxGraphBuilder::bind(const net::WdmNetwork& net) {
  if (net_uid_ == net.uid() && bound_nodes_ == net.num_nodes() &&
      bound_links_ == net.num_links()) {
    return;
  }
  ++stats_.rebinds;
  net_uid_ = net.uid();
  bound_nodes_ = net.num_nodes();
  bound_links_ = net.num_links();
  // The stable-arena structure is keyed on the bound topology.
  uni_ready_ = false;
  uni_weights_valid_ = false;

  const auto& pg = net.graph();
  pair_base_.assign(static_cast<std::size_t>(pg.num_nodes()) + 1, 0);
  std::size_t total = 0;
  for (NodeId v = 0; v < pg.num_nodes(); ++v) {
    pair_base_[static_cast<std::size_t>(v)] = total;
    total += static_cast<std::size_t>(pg.in_degree(v)) *
             static_cast<std::size_t>(pg.out_degree(v));
  }
  pair_base_[static_cast<std::size_t>(pg.num_nodes())] = total;
  pair_in_rev_.assign(total, kNoRevision);
  pair_out_rev_.assign(total, kNoRevision);
  pair_conv_rev_.assign(total, kNoRevision);
  pair_has_.assign(total, 0);
  pair_mean_.assign(total, 0.0);

  const auto m = static_cast<std::size_t>(net.num_links());
  link_rev_seen_.assign(m, kNoRevision);
  link_sum_.assign(m, 0.0);
  link_cnt_.assign(m, 0);
}

void AuxGraphBuilder::invalidate() {
  net_uid_ = 0;
  bound_nodes_ = -1;
  bound_links_ = -1;
  uni_ready_ = false;
  uni_weights_valid_ = false;
}

bool AuxGraphBuilder::transit_mean(const net::WdmNetwork& net, net::NodeId v,
                                   std::size_t idx, graph::EdgeId in_link,
                                   graph::EdgeId out_link, double* mean_out) {
  const std::uint64_t in_rev = net.link_revision(in_link);
  const std::uint64_t out_rev = net.link_revision(out_link);
  const std::uint64_t conv_rev = net.conversion_revision(v);
  if (pair_in_rev_[idx] == in_rev && pair_out_rev_[idx] == out_rev &&
      pair_conv_rev_[idx] == conv_rev) {
    ++stats_.conv_hits;
    *mean_out = pair_mean_[idx];
    return pair_has_[idx] != 0;
  }
  ++stats_.conv_misses;
  double mean = 0.0;
  const bool has = mean_conversion_cost(net, v, in_link, out_link, &mean);
  pair_in_rev_[idx] = in_rev;
  pair_out_rev_[idx] = out_rev;
  pair_conv_rev_[idx] = conv_rev;
  pair_has_[idx] = has ? 1 : 0;
  pair_mean_[idx] = mean;
  *mean_out = mean;
  return has;
}

void AuxGraphBuilder::link_costs(const net::WdmNetwork& net, graph::EdgeId e,
                                 double* sum, int* count) {
  const std::uint64_t rev = net.link_revision(e);
  const auto i = static_cast<std::size_t>(e);
  if (link_rev_seen_[i] == rev) {
    ++stats_.link_hits;
  } else {
    ++stats_.link_misses;
    // Accumulate in ascending-λ order, exactly like mean_available_weight
    // and the cold G_rc sum, so cached weights stay bit-identical.
    double s = 0.0;
    const net::WavelengthSet avail = net.available(e);
    avail.for_each([&](net::Wavelength l) { s += net.weight(e, l); });
    link_sum_[i] = s;
    link_cnt_[i] = avail.count();
    link_rev_seen_[i] = rev;
  }
  *sum = link_sum_[i];
  *count = link_cnt_[i];
}

const AuxGraph& AuxGraphBuilder::build(const net::WdmNetwork& net,
                                       net::NodeId s, net::NodeId t,
                                       const AuxGraphOptions& opt) {
  const auto& pg = net.graph();
  WDM_CHECK(pg.valid_node(s) && pg.valid_node(t));
  WDM_CHECK(s != t);
  WDM_CHECK(opt.link_enabled.empty() ||
            opt.link_enabled.size() == static_cast<std::size_t>(pg.num_edges()));
  const bool filter_by_theta = opt.weighting != AuxWeighting::kCost;
  if (opt.weighting == AuxWeighting::kLoadExponential) {
    WDM_CHECK_MSG(opt.load_base > 1.0, "G_c requires exponent base a > 1");
  }

  bind(net);
  ++stats_.builds;
  support::telemetry::SplitTimer tel_timer;
  const CacheStats tel_before = tel_timer.on() ? stats_ : CacheStats{};
  (void)tel_before;  // referenced only from macro expansions when compiled in

  if (opt.stable_arena) {
    build_stable(net, s, t, opt);
    if (tel_timer.on()) {
      tel_timer.total(WDM_TEL_HIST("rwa.aux_builder.build_ns"),
                      WDM_TEL_NAME("rwa.aux_builder.build"));
      WDM_TEL_COUNT("rwa.aux_builder.builds");
      WDM_TEL_COUNT_N("rwa.aux_builder.conv_hits",
                      stats_.conv_hits - tel_before.conv_hits);
      WDM_TEL_COUNT_N("rwa.aux_builder.conv_misses",
                      stats_.conv_misses - tel_before.conv_misses);
      WDM_TEL_COUNT_N("rwa.aux_builder.link_hits",
                      stats_.link_hits - tel_before.link_hits);
      WDM_TEL_COUNT_N("rwa.aux_builder.link_misses",
                      stats_.link_misses - tel_before.link_misses);
      WDM_TEL_COUNT_N("rwa.aux_builder.rebinds",
                      stats_.rebinds - tel_before.rebinds);
    }
    return aux_;
  }

  // A compacted build recycles the same arena, so any stable-arena structure
  // living there is gone after this.
  uni_ready_ = false;
  uni_weights_valid_ = false;

  AuxGraph& aux = aux_;
  aux.g.clear_keep_capacity();
  aux.w.clear();
  aux.phys_edge_of_arc.clear();
  aux.phys_edge_of_node.clear();
  aux.is_in_node.clear();
  aux.s_prime = graph::kInvalidNode;
  aux.t_second = graph::kInvalidNode;
  aux.num_edge_nodes = 0;
  aux.num_link_arcs = 0;
  aux.num_transit_arcs = 0;

  // A link is usable when it survives the caller's mask, still has available
  // wavelengths (residual network membership), and — for G_c / G_rc — its
  // load is strictly below ϑ.
  auto usable = [&](EdgeId e) {
    if (!opt.link_enabled.empty() &&
        !opt.link_enabled[static_cast<std::size_t>(e)]) {
      return false;
    }
    if (net.available(e).empty()) return false;
    if (filter_by_theta) {
      const double load = net.link_load(e);
      if (opt.include_at_threshold ? load > opt.theta : load >= opt.theta) {
        return false;
      }
    }
    return true;
  };

  // Edge-nodes: out_node_[e] = u_out^e, in_node_[e] = v_in^e.
  out_node_.assign(static_cast<std::size_t>(pg.num_edges()),
                   graph::kInvalidNode);
  in_node_.assign(static_cast<std::size_t>(pg.num_edges()),
                  graph::kInvalidNode);
  auto new_node = [&](EdgeId e, bool is_in) {
    const NodeId v = aux.g.add_node();
    aux.phys_edge_of_node.push_back(e);
    aux.is_in_node.push_back(is_in ? 1 : 0);
    return v;
  };
  for (EdgeId e = 0; e < pg.num_edges(); ++e) {
    if (!usable(e)) continue;
    out_node_[static_cast<std::size_t>(e)] = new_node(e, false);
    in_node_[static_cast<std::size_t>(e)] = new_node(e, true);
    aux.num_edge_nodes += 2;
  }
  aux.s_prime = new_node(graph::kInvalidEdge, false);
  aux.t_second = new_node(graph::kInvalidEdge, true);

  auto add_arc = [&](NodeId a, NodeId b, double weight, EdgeId phys) {
    aux.g.add_edge(a, b);
    aux.w.push_back(weight);
    aux.phys_edge_of_arc.push_back(phys);
  };

  // Link arcs u_out^e -> v_in^e.
  for (EdgeId e = 0; e < pg.num_edges(); ++e) {
    if (out_node_[static_cast<std::size_t>(e)] == graph::kInvalidNode) continue;
    double weight = 0.0;
    switch (opt.weighting) {
      case AuxWeighting::kCost: {
        double sum = 0.0;
        int count = 0;
        link_costs(net, e, &sum, &count);
        WDM_DCHECK(count > 0);
        weight = sum / count;
        break;
      }
      case AuxWeighting::kLoadExponential: {
        const double u = net.usage(e);
        const double cap = net.capacity(e);
        weight = std::pow(opt.load_base, (u + 1.0) / cap) -
                 std::pow(opt.load_base, u / cap);
        break;
      }
      case AuxWeighting::kCostLoadFiltered: {
        // Paper formula: Σ_{λ∈Λ_avail(e)} w(e,λ) / N(e). Dividing by N(e)
        // rather than |Λ_avail(e)| under-weights partially loaded links; we
        // follow the paper as written by default (see header comment) and
        // expose the true mean as an ablation.
        double sum = 0.0;
        int count = 0;
        link_costs(net, e, &sum, &count);
        weight = sum / (opt.grc_mean_over_available ? count
                                                    : net.capacity(e));
        break;
      }
    }
    add_arc(out_node_[static_cast<std::size_t>(e)],
            in_node_[static_cast<std::size_t>(e)], weight, e);
    ++aux.num_link_arcs;
  }

  // Transit arcs v_in^e -> v_out^e' when some available conversion exists.
  for (NodeId v = 0; v < pg.num_nodes(); ++v) {
    const auto in_edges = pg.in_edges(v);
    const auto out_edges = pg.out_edges(v);
    const std::size_t base = pair_base_[static_cast<std::size_t>(v)];
    const std::size_t out_deg = out_edges.size();
    if (opt.protect_nodes && v != s && v != t) {
      // Node gadget: every transit at v funnels through one hub arc of
      // capacity 1 (for Suurballe's purposes: one edge), making the two
      // auxiliary paths internally node-disjoint in G.
      double sum = 0.0;
      int pairs = 0;
      for (std::size_t i = 0; i < in_edges.size(); ++i) {
        const EdgeId e = in_edges[i];
        if (in_node_[static_cast<std::size_t>(e)] == graph::kInvalidNode) {
          continue;
        }
        for (std::size_t j = 0; j < out_deg; ++j) {
          const EdgeId e2 = out_edges[j];
          if (out_node_[static_cast<std::size_t>(e2)] == graph::kInvalidNode) {
            continue;
          }
          double mean = 0.0;
          if (transit_mean(net, v, base + i * out_deg + j, e, e2, &mean)) {
            sum += mean;
            ++pairs;
          }
        }
      }
      if (pairs == 0) continue;  // v cannot be transited at all
      const double hub_weight =
          (opt.weighting == AuxWeighting::kLoadExponential) ? 0.0
                                                            : sum / pairs;
      const NodeId hub_in = new_node(graph::kInvalidEdge, true);
      const NodeId hub_out = new_node(graph::kInvalidEdge, false);
      add_arc(hub_in, hub_out, hub_weight, graph::kInvalidEdge);
      ++aux.num_transit_arcs;
      for (const EdgeId e : in_edges) {
        const NodeId a = in_node_[static_cast<std::size_t>(e)];
        if (a != graph::kInvalidNode) {
          add_arc(a, hub_in, 0.0, graph::kInvalidEdge);
        }
      }
      for (const EdgeId e2 : out_edges) {
        const NodeId b = out_node_[static_cast<std::size_t>(e2)];
        if (b != graph::kInvalidNode) {
          add_arc(hub_out, b, 0.0, graph::kInvalidEdge);
        }
      }
      continue;
    }
    for (std::size_t i = 0; i < in_edges.size(); ++i) {
      const EdgeId e = in_edges[i];
      const NodeId a = in_node_[static_cast<std::size_t>(e)];
      if (a == graph::kInvalidNode) continue;
      for (std::size_t j = 0; j < out_deg; ++j) {
        const EdgeId e2 = out_edges[j];
        const NodeId b = out_node_[static_cast<std::size_t>(e2)];
        if (b == graph::kInvalidNode) continue;
        double mean = 0.0;
        if (!transit_mean(net, v, base + i * out_deg + j, e, e2, &mean)) {
          continue;
        }
        const double weight =
            (opt.weighting == AuxWeighting::kLoadExponential) ? 0.0 : mean;
        add_arc(a, b, weight, graph::kInvalidEdge);
        ++aux.num_transit_arcs;
      }
    }
  }

  // Hub arcs.
  for (EdgeId e : pg.out_edges(s)) {
    const NodeId b = out_node_[static_cast<std::size_t>(e)];
    if (b != graph::kInvalidNode) {
      add_arc(aux.s_prime, b, 0.0, graph::kInvalidEdge);
    }
  }
  for (EdgeId e : pg.in_edges(t)) {
    const NodeId a = in_node_[static_cast<std::size_t>(e)];
    if (a != graph::kInvalidNode) {
      add_arc(a, aux.t_second, 0.0, graph::kInvalidEdge);
    }
  }
  if (tel_timer.on()) {
    tel_timer.total(WDM_TEL_HIST("rwa.aux_builder.build_ns"),
                    WDM_TEL_NAME("rwa.aux_builder.build"));
    WDM_TEL_COUNT("rwa.aux_builder.builds");
    WDM_TEL_COUNT_N("rwa.aux_builder.conv_hits",
                    stats_.conv_hits - tel_before.conv_hits);
    WDM_TEL_COUNT_N("rwa.aux_builder.conv_misses",
                    stats_.conv_misses - tel_before.conv_misses);
    WDM_TEL_COUNT_N("rwa.aux_builder.link_hits",
                    stats_.link_hits - tel_before.link_hits);
    WDM_TEL_COUNT_N("rwa.aux_builder.link_misses",
                    stats_.link_misses - tel_before.link_misses);
    WDM_TEL_COUNT_N("rwa.aux_builder.rebinds",
                    stats_.rebinds - tel_before.rebinds);
  }
  return aux_;
}

bool AuxGraphBuilder::stable_usable(const net::WdmNetwork& net,
                                    graph::EdgeId e,
                                    const AuxGraphOptions& opt) const {
  if (!opt.link_enabled.empty() &&
      !opt.link_enabled[static_cast<std::size_t>(e)]) {
    return false;
  }
  if (net.available(e).empty()) return false;
  if (opt.weighting != AuxWeighting::kCost) {
    const double load = net.link_load(e);
    if (opt.include_at_threshold ? load > opt.theta : load >= opt.theta) {
      return false;
    }
  }
  return true;
}

void AuxGraphBuilder::stable_structure(const net::WdmNetwork& net,
                                       bool protect) {
  const auto& pg = net.graph();
  const EdgeId m = pg.num_edges();
  const NodeId n = pg.num_nodes();
  const std::size_t pairs = pair_base_[static_cast<std::size_t>(n)];

  AuxGraph& aux = aux_;
  aux.g.clear_keep_capacity();
  aux.phys_edge_of_node.clear();
  aux.is_in_node.clear();
  const NodeId num_nodes =
      2 * m + 2 + (protect ? 2 * n : 0);
  const auto num_arcs = static_cast<std::size_t>(m) + pairs +
                        (protect ? static_cast<std::size_t>(n) +
                                       2 * static_cast<std::size_t>(m)
                                 : 0) +
                        2 * static_cast<std::size_t>(m);
  aux.g.reserve(num_nodes, static_cast<EdgeId>(num_arcs));

  auto new_node = [&](EdgeId e, bool is_in) {
    const NodeId v = aux.g.add_node();
    aux.phys_edge_of_node.push_back(e);
    aux.is_in_node.push_back(is_in ? 1 : 0);
    return v;
  };
  // Computed ids: u_out^e = 2e, v_in^e = 2e + 1, then the two hubs, then the
  // protect gadget nodes (hub_in(v) = 2m + 2 + 2v, hub_out(v) one above).
  for (EdgeId e = 0; e < m; ++e) {
    new_node(e, false);
    new_node(e, true);
  }
  aux.s_prime = new_node(graph::kInvalidEdge, false);
  aux.t_second = new_node(graph::kInvalidEdge, true);
  if (protect) {
    for (NodeId v = 0; v < n; ++v) {
      new_node(graph::kInvalidEdge, true);   // hub_in(v)
      new_node(graph::kInvalidEdge, false);  // hub_out(v)
    }
  }

  // Arc table, fixed order. Weights come later (stable_patch_*).
  // 1. Link arcs: arc id e = link arc of physical link e.
  for (EdgeId e = 0; e < m; ++e) {
    aux.g.add_edge(2 * e, 2 * e + 1);
  }
  // 2. Pair transit arcs: m + pair_base_[v] + i * out_deg(v) + j.
  for (NodeId v = 0; v < n; ++v) {
    for (const EdgeId e : pg.in_edges(v)) {
      for (const EdgeId e2 : pg.out_edges(v)) {
        aux.g.add_edge(2 * e + 1, 2 * e2);
      }
    }
  }
  // 3. Protect gadget: one hub arc per node, then one fan arc per link end.
  if (protect) {
    uni_hub_arc_base_ = aux.g.num_edges();
    for (NodeId v = 0; v < n; ++v) {
      const NodeId hub_in = 2 * m + 2 + 2 * v;
      aux.g.add_edge(hub_in, hub_in + 1);
    }
    uni_fan_in_arc_.assign(static_cast<std::size_t>(m), graph::kInvalidEdge);
    uni_fan_out_arc_.assign(static_cast<std::size_t>(m), graph::kInvalidEdge);
    for (NodeId v = 0; v < n; ++v) {
      const NodeId hub_in = 2 * m + 2 + 2 * v;
      for (const EdgeId e : pg.in_edges(v)) {
        uni_fan_in_arc_[static_cast<std::size_t>(e)] =
            aux.g.add_edge(2 * e + 1, hub_in);
      }
      for (const EdgeId e2 : pg.out_edges(v)) {
        uni_fan_out_arc_[static_cast<std::size_t>(e2)] =
            aux.g.add_edge(hub_in + 1, 2 * e2);
      }
    }
  }
  // 4./5. Query wiring: one s' arc and one t'' arc per link, id = base + e.
  uni_sprime_arc_base_ = aux.g.num_edges();
  for (EdgeId e = 0; e < m; ++e) {
    aux.g.add_edge(aux.s_prime, 2 * e);
  }
  uni_tsec_arc_base_ = aux.g.num_edges();
  for (EdgeId e = 0; e < m; ++e) {
    aux.g.add_edge(2 * e + 1, aux.t_second);
  }
  aux.g.finalize_csr();

  aux.w.assign(static_cast<std::size_t>(aux.g.num_edges()), graph::kInf);
  aux.phys_edge_of_arc.assign(static_cast<std::size_t>(aux.g.num_edges()),
                              graph::kInvalidEdge);
  for (EdgeId e = 0; e < m; ++e) {
    aux.phys_edge_of_arc[static_cast<std::size_t>(e)] = e;
  }
  aux.num_edge_nodes = 0;
  aux.num_link_arcs = 0;
  aux.num_transit_arcs = 0;
  uni_usable_.assign(static_cast<std::size_t>(m), 0);
  uni_node_transit_.assign(static_cast<std::size_t>(n), 0);
  uni_link_rev_.assign(static_cast<std::size_t>(m), kNoRevision);
  uni_conv_rev_.assign(static_cast<std::size_t>(n), kNoRevision);
  uni_node_mark_.assign(static_cast<std::size_t>(n), 0);
  uni_protect_ = protect;
  uni_ready_ = true;
  uni_weights_valid_ = false;
  ++uni_gen_;
  // Dirty-hint log: a fresh structure starts a fresh epoch (all weights are
  // about to be repatched anyway). The cap bounds both consumer scan work
  // and memory; reserving it here keeps steady-state appends allocation-free.
  patch_log_cap_ = std::max<std::size_t>(1024, num_arcs / 8);
  patch_log_.clear();
  patch_log_.reserve(patch_log_cap_);
  patch_overflow_ = false;
  ++patch_epoch_;
}

void AuxGraphBuilder::log_patch(graph::EdgeId begin, graph::EdgeId count) {
  if (patch_log_.size() < patch_log_cap_) {
    patch_log_.push_back({begin, count});
  } else {
    patch_overflow_ = true;
  }
}

void AuxGraphBuilder::stable_patch_link(const net::WdmNetwork& net,
                                        graph::EdgeId e, net::NodeId s,
                                        net::NodeId t,
                                        const AuxGraphOptions& opt) {
  const auto& pg = net.graph();
  const auto i = static_cast<std::size_t>(e);
  const bool usable = stable_usable(net, e, opt);
  double weight = graph::kInf;
  if (usable) {
    switch (opt.weighting) {
      case AuxWeighting::kCost: {
        double sum = 0.0;
        int count = 0;
        link_costs(net, e, &sum, &count);
        WDM_DCHECK(count > 0);
        weight = sum / count;
        break;
      }
      case AuxWeighting::kLoadExponential: {
        const double u = net.usage(e);
        const double cap = net.capacity(e);
        weight = std::pow(opt.load_base, (u + 1.0) / cap) -
                 std::pow(opt.load_base, u / cap);
        break;
      }
      case AuxWeighting::kCostLoadFiltered: {
        double sum = 0.0;
        int count = 0;
        link_costs(net, e, &sum, &count);
        weight =
            sum / (opt.grc_mean_over_available ? count : net.capacity(e));
        break;
      }
    }
  }
  aux_.w[i] = weight;
  aux_.w[static_cast<std::size_t>(uni_sprime_arc_base_ + e)] =
      (usable && pg.tail(e) == s) ? 0.0 : graph::kInf;
  aux_.w[static_cast<std::size_t>(uni_tsec_arc_base_ + e)] =
      (usable && pg.head(e) == t) ? 0.0 : graph::kInf;
  log_patch(e, 1);
  log_patch(uni_sprime_arc_base_ + e, 1);
  log_patch(uni_tsec_arc_base_ + e, 1);
  const bool was = uni_usable_[i] != 0;
  if (was != usable) {
    aux_.num_link_arcs += usable ? 1 : -1;
    aux_.num_edge_nodes += usable ? 2 : -2;
    uni_usable_[i] = usable ? 1 : 0;
  }
}

void AuxGraphBuilder::stable_patch_node(const net::WdmNetwork& net,
                                        net::NodeId v, net::NodeId s,
                                        net::NodeId t,
                                        const AuxGraphOptions& opt) {
  const auto& pg = net.graph();
  const EdgeId m = pg.num_edges();
  const auto in_edges = pg.in_edges(v);
  const auto out_edges = pg.out_edges(v);
  const std::size_t base = pair_base_[static_cast<std::size_t>(v)];
  const std::size_t out_deg = out_edges.size();
  const bool protect = opt.protect_nodes;
  const bool pair_enabled = !protect || v == s || v == t;

  if (in_edges.size() * out_deg > 0) {
    log_patch(static_cast<graph::EdgeId>(static_cast<std::size_t>(m) + base),
              static_cast<graph::EdgeId>(in_edges.size() * out_deg));
  }
  int contrib = 0;
  double hub_sum = 0.0;
  int hub_pairs = 0;
  for (std::size_t i = 0; i < in_edges.size(); ++i) {
    const EdgeId e = in_edges[i];
    const bool in_ok = uni_usable_[static_cast<std::size_t>(e)] != 0;
    for (std::size_t j = 0; j < out_deg; ++j) {
      const EdgeId e2 = out_edges[j];
      const std::size_t idx = base + i * out_deg + j;
      const auto arc = static_cast<std::size_t>(m) + idx;
      double weight = graph::kInf;
      if (in_ok && uni_usable_[static_cast<std::size_t>(e2)] != 0) {
        double mean = 0.0;
        if (transit_mean(net, v, idx, e, e2, &mean)) {
          if (pair_enabled) {
            weight = (opt.weighting == AuxWeighting::kLoadExponential)
                         ? 0.0
                         : mean;
            ++contrib;
          } else {
            // Aggregated into the node gadget's hub arc, (i, j) order —
            // bit-identical to the compacted builder's accumulation.
            hub_sum += mean;
            ++hub_pairs;
          }
        }
      }
      aux_.w[arc] = weight;
    }
  }

  if (protect) {
    const bool hub_on = !pair_enabled && hub_pairs > 0;
    double hub_weight = graph::kInf;
    if (hub_on) {
      hub_weight = (opt.weighting == AuxWeighting::kLoadExponential)
                       ? 0.0
                       : hub_sum / hub_pairs;
      ++contrib;
    }
    aux_.w[static_cast<std::size_t>(uni_hub_arc_base_ + v)] = hub_weight;
    log_patch(uni_hub_arc_base_ + v, 1);
    for (const EdgeId e : in_edges) {
      const EdgeId fan = uni_fan_in_arc_[static_cast<std::size_t>(e)];
      aux_.w[static_cast<std::size_t>(fan)] =
          (hub_on && uni_usable_[static_cast<std::size_t>(e)] != 0)
              ? 0.0
              : graph::kInf;
      log_patch(fan, 1);
    }
    for (const EdgeId e2 : out_edges) {
      const EdgeId fan = uni_fan_out_arc_[static_cast<std::size_t>(e2)];
      aux_.w[static_cast<std::size_t>(fan)] =
          (hub_on && uni_usable_[static_cast<std::size_t>(e2)] != 0)
              ? 0.0
              : graph::kInf;
      log_patch(fan, 1);
    }
  }
  aux_.num_transit_arcs += contrib - uni_node_transit_[static_cast<std::size_t>(v)];
  uni_node_transit_[static_cast<std::size_t>(v)] = contrib;
}

void AuxGraphBuilder::build_stable(const net::WdmNetwork& net, net::NodeId s,
                                   net::NodeId t, const AuxGraphOptions& opt) {
  const auto& pg = net.graph();
  const EdgeId m = pg.num_edges();
  const NodeId n = pg.num_nodes();
  const bool protect = opt.protect_nodes;
  if (!uni_ready_ || uni_protect_ != protect) {
    stable_structure(net, protect);
  }

  const bool mask_now = !opt.link_enabled.empty();
  const bool full =
      !uni_weights_valid_ || mask_now || uni_had_mask_ ||
      uni_opt_.weighting != opt.weighting || uni_opt_.theta != opt.theta ||
      uni_opt_.include_at_threshold != opt.include_at_threshold ||
      uni_opt_.load_base != opt.load_base ||
      uni_opt_.grc_mean_over_available != opt.grc_mean_over_available;
  const std::uint64_t now_rev = net.revision();

  if (!full && now_rev == uni_net_rev_ && s == uni_s_ && t == uni_t_) {
    return;  // weights already bit-identical for this query
  }

  if (full) {
    for (EdgeId e = 0; e < m; ++e) {
      uni_link_rev_[static_cast<std::size_t>(e)] = net.link_revision(e);
      stable_patch_link(net, e, s, t, opt);
    }
    for (NodeId v = 0; v < n; ++v) {
      uni_conv_rev_[static_cast<std::size_t>(v)] = net.conversion_revision(v);
      stable_patch_node(net, v, s, t, opt);
    }
  } else {
    uni_changed_nodes_.clear();
    auto mark = [&](NodeId v) {
      if (!uni_node_mark_[static_cast<std::size_t>(v)]) {
        uni_node_mark_[static_cast<std::size_t>(v)] = 1;
        uni_changed_nodes_.push_back(v);
      }
    };
    // Query rewiring: only arcs touching the old/new endpoints move, and in
    // protect mode the gadgets at those four nodes flip between hub and
    // direct-pair form.
    if (s != uni_s_) {
      for (const EdgeId e : pg.out_edges(uni_s_)) {
        stable_patch_link(net, e, s, t, opt);
      }
      for (const EdgeId e : pg.out_edges(s)) {
        stable_patch_link(net, e, s, t, opt);
      }
      if (protect) {
        mark(uni_s_);
        mark(s);
      }
    }
    if (t != uni_t_) {
      for (const EdgeId e : pg.in_edges(uni_t_)) {
        stable_patch_link(net, e, s, t, opt);
      }
      for (const EdgeId e : pg.in_edges(t)) {
        stable_patch_link(net, e, s, t, opt);
      }
      if (protect) {
        mark(uni_t_);
        mark(t);
      }
    }
    // Residual churn: only links whose revision moved, plus their endpoints'
    // transit structures; only nodes whose conversion table was swapped.
    if (now_rev != uni_net_rev_) {
      for (EdgeId e = 0; e < m; ++e) {
        const std::uint64_t rev = net.link_revision(e);
        auto& seen = uni_link_rev_[static_cast<std::size_t>(e)];
        if (seen == rev) continue;
        seen = rev;
        stable_patch_link(net, e, s, t, opt);
        mark(pg.tail(e));
        mark(pg.head(e));
      }
      for (NodeId v = 0; v < n; ++v) {
        const std::uint64_t rev = net.conversion_revision(v);
        auto& seen = uni_conv_rev_[static_cast<std::size_t>(v)];
        if (seen == rev) continue;
        seen = rev;
        mark(v);
      }
    }
    for (const NodeId v : uni_changed_nodes_) {
      uni_node_mark_[static_cast<std::size_t>(v)] = 0;
      stable_patch_node(net, v, s, t, opt);
    }
  }

  // A full repatch (or an overflowed log) means the spans no longer cover
  // everything that changed this epoch — end it so hint consumers fall
  // back to a full diff once, then resync.
  if (full || patch_overflow_) {
    ++patch_epoch_;
    patch_log_.clear();
    patch_overflow_ = false;
  }

  uni_opt_ = opt;
  uni_opt_.link_enabled = {};  // never hold the caller's span across builds
  uni_had_mask_ = mask_now;
  uni_s_ = s;
  uni_t_ = t;
  uni_net_rev_ = now_rev;
  uni_weights_valid_ = true;
}

void AuxGraphBuilder::build_batch(
    const net::WdmNetwork& net,
    std::span<const std::pair<net::NodeId, net::NodeId>> queries,
    const AuxGraphOptions& opt,
    const std::function<void(std::size_t, const AuxGraph&)>& fn) {
  for (std::size_t i = 0; i < queries.size(); ++i) {
    fn(i, build(net, queries[i].first, queries[i].second, opt));
  }
}

AuxGraph AuxGraphBuilder::take_last() {
  AuxGraph out = std::move(aux_);
  aux_ = AuxGraph{};
  // The stable-arena index arrays referenced the donated graph.
  uni_ready_ = false;
  uni_weights_valid_ = false;
  return out;
}

AuxGraphBuilderPool::Lease::~Lease() {
  if (builder_ != nullptr) pool_->put(std::move(builder_));
}

AuxGraphBuilderPool::Lease AuxGraphBuilderPool::lease() {
  std::unique_ptr<AuxGraphBuilder> builder;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (!idle_.empty()) {
      builder = std::move(idle_.back());
      idle_.pop_back();
    }
  }
  if (builder == nullptr) builder = std::make_unique<AuxGraphBuilder>();
  return Lease(this, std::move(builder));
}

AuxGraphBuilderPool::Lease AuxGraphBuilderPool::lease(
    const net::WdmNetwork& net) {
  std::unique_ptr<AuxGraphBuilder> builder;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    // Exact uid match first (warm caches), then a never-bound builder (no
    // caches to destroy), then LIFO (evicts some other network's warmth).
    std::size_t pick = idle_.size();
    for (std::size_t i = idle_.size(); i-- > 0;) {
      if (idle_[i]->bound_uid() == net.uid()) {
        pick = i;
        break;
      }
      if (pick == idle_.size() && idle_[i]->bound_uid() == 0) pick = i;
    }
    if (pick == idle_.size() && !idle_.empty()) pick = idle_.size() - 1;
    if (pick < idle_.size()) {
      builder = std::move(idle_[pick]);
      idle_.erase(idle_.begin() + static_cast<std::ptrdiff_t>(pick));
    }
  }
  if (builder == nullptr) builder = std::make_unique<AuxGraphBuilder>();
  return Lease(this, std::move(builder));
}

std::size_t AuxGraphBuilderPool::idle_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return idle_.size();
}

void AuxGraphBuilderPool::put(std::unique_ptr<AuxGraphBuilder> builder) {
  const std::lock_guard<std::mutex> lock(mu_);
  idle_.push_back(std::move(builder));
}

AuxGraph build_aux_graph(const net::WdmNetwork& net, net::NodeId s,
                         net::NodeId t, const AuxGraphOptions& opt) {
  AuxGraphBuilder builder;
  builder.build(net, s, t, opt);
  return builder.take_last();
}

std::vector<EdgeId> AuxGraph::project(const graph::Path& p) const {
  std::vector<EdgeId> links;
  for (EdgeId arc : p.edges) {
    const EdgeId phys = phys_edge_of_arc[static_cast<std::size_t>(arc)];
    if (phys != graph::kInvalidEdge) links.push_back(phys);
  }
  return links;
}

void AuxGraph::project_into(const graph::Path& p,
                            std::vector<EdgeId>* out) const {
  out->clear();
  for (EdgeId arc : p.edges) {
    const EdgeId phys = phys_edge_of_arc[static_cast<std::size_t>(arc)];
    if (phys != graph::kInvalidEdge) out->push_back(phys);
  }
}

std::vector<std::uint8_t> AuxGraph::induced_link_mask(
    const graph::Path& p, graph::EdgeId num_links) const {
  std::vector<std::uint8_t> mask(static_cast<std::size_t>(num_links), 0);
  for (EdgeId link : project(p)) mask[static_cast<std::size_t>(link)] = 1;
  return mask;
}

void AuxGraph::induced_link_mask_into(const graph::Path& p,
                                      graph::EdgeId num_links,
                                      std::vector<std::uint8_t>* out) const {
  out->assign(static_cast<std::size_t>(num_links), 0);
  for (EdgeId arc : p.edges) {
    const EdgeId phys = phys_edge_of_arc[static_cast<std::size_t>(arc)];
    if (phys != graph::kInvalidEdge) (*out)[static_cast<std::size_t>(phys)] = 1;
  }
}

}  // namespace wdm::rwa
