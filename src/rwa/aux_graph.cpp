#include "rwa/aux_graph.hpp"

#include <cmath>

#include "support/check.hpp"
#include "support/telemetry.hpp"

namespace wdm::rwa {

using graph::EdgeId;
using graph::NodeId;

bool mean_conversion_cost(const net::WdmNetwork& net, net::NodeId v,
                          graph::EdgeId in_link, graph::EdgeId out_link,
                          double* mean_out) {
  const auto& table = net.conversion(v);
  const net::WavelengthSet from = net.available(in_link);
  const net::WavelengthSet to = net.available(out_link);
  double sum = 0.0;
  int pairs = 0;
  from.for_each([&](net::Wavelength a) {
    to.for_each([&](net::Wavelength b) {
      if (table.allowed(a, b)) {
        sum += table.cost(a, b);
        ++pairs;
      }
    });
  });
  if (pairs == 0) return false;
  if (mean_out != nullptr) *mean_out = sum / pairs;
  return true;
}

void AuxGraphBuilder::bind(const net::WdmNetwork& net) {
  if (net_uid_ == net.uid() && bound_nodes_ == net.num_nodes() &&
      bound_links_ == net.num_links()) {
    return;
  }
  ++stats_.rebinds;
  net_uid_ = net.uid();
  bound_nodes_ = net.num_nodes();
  bound_links_ = net.num_links();

  const auto& pg = net.graph();
  pair_base_.assign(static_cast<std::size_t>(pg.num_nodes()) + 1, 0);
  std::size_t total = 0;
  for (NodeId v = 0; v < pg.num_nodes(); ++v) {
    pair_base_[static_cast<std::size_t>(v)] = total;
    total += static_cast<std::size_t>(pg.in_degree(v)) *
             static_cast<std::size_t>(pg.out_degree(v));
  }
  pair_base_[static_cast<std::size_t>(pg.num_nodes())] = total;
  pair_in_rev_.assign(total, kNoRevision);
  pair_out_rev_.assign(total, kNoRevision);
  pair_conv_rev_.assign(total, kNoRevision);
  pair_has_.assign(total, 0);
  pair_mean_.assign(total, 0.0);

  const auto m = static_cast<std::size_t>(net.num_links());
  link_rev_seen_.assign(m, kNoRevision);
  link_sum_.assign(m, 0.0);
  link_cnt_.assign(m, 0);
}

void AuxGraphBuilder::invalidate() {
  net_uid_ = 0;
  bound_nodes_ = -1;
  bound_links_ = -1;
}

bool AuxGraphBuilder::transit_mean(const net::WdmNetwork& net, net::NodeId v,
                                   std::size_t idx, graph::EdgeId in_link,
                                   graph::EdgeId out_link, double* mean_out) {
  const std::uint64_t in_rev = net.link_revision(in_link);
  const std::uint64_t out_rev = net.link_revision(out_link);
  const std::uint64_t conv_rev = net.conversion_revision(v);
  if (pair_in_rev_[idx] == in_rev && pair_out_rev_[idx] == out_rev &&
      pair_conv_rev_[idx] == conv_rev) {
    ++stats_.conv_hits;
    *mean_out = pair_mean_[idx];
    return pair_has_[idx] != 0;
  }
  ++stats_.conv_misses;
  double mean = 0.0;
  const bool has = mean_conversion_cost(net, v, in_link, out_link, &mean);
  pair_in_rev_[idx] = in_rev;
  pair_out_rev_[idx] = out_rev;
  pair_conv_rev_[idx] = conv_rev;
  pair_has_[idx] = has ? 1 : 0;
  pair_mean_[idx] = mean;
  *mean_out = mean;
  return has;
}

void AuxGraphBuilder::link_costs(const net::WdmNetwork& net, graph::EdgeId e,
                                 double* sum, int* count) {
  const std::uint64_t rev = net.link_revision(e);
  const auto i = static_cast<std::size_t>(e);
  if (link_rev_seen_[i] == rev) {
    ++stats_.link_hits;
  } else {
    ++stats_.link_misses;
    // Accumulate in ascending-λ order, exactly like mean_available_weight
    // and the cold G_rc sum, so cached weights stay bit-identical.
    double s = 0.0;
    const net::WavelengthSet avail = net.available(e);
    avail.for_each([&](net::Wavelength l) { s += net.weight(e, l); });
    link_sum_[i] = s;
    link_cnt_[i] = avail.count();
    link_rev_seen_[i] = rev;
  }
  *sum = link_sum_[i];
  *count = link_cnt_[i];
}

const AuxGraph& AuxGraphBuilder::build(const net::WdmNetwork& net,
                                       net::NodeId s, net::NodeId t,
                                       const AuxGraphOptions& opt) {
  const auto& pg = net.graph();
  WDM_CHECK(pg.valid_node(s) && pg.valid_node(t));
  WDM_CHECK(s != t);
  WDM_CHECK(opt.link_enabled.empty() ||
            opt.link_enabled.size() == static_cast<std::size_t>(pg.num_edges()));
  const bool filter_by_theta = opt.weighting != AuxWeighting::kCost;
  if (opt.weighting == AuxWeighting::kLoadExponential) {
    WDM_CHECK_MSG(opt.load_base > 1.0, "G_c requires exponent base a > 1");
  }

  bind(net);
  ++stats_.builds;
  support::telemetry::SplitTimer tel_timer;
  const CacheStats tel_before = tel_timer.on() ? stats_ : CacheStats{};
  (void)tel_before;  // referenced only from macro expansions when compiled in

  AuxGraph& aux = aux_;
  aux.g.clear_keep_capacity();
  aux.w.clear();
  aux.phys_edge_of_arc.clear();
  aux.phys_edge_of_node.clear();
  aux.is_in_node.clear();
  aux.s_prime = graph::kInvalidNode;
  aux.t_second = graph::kInvalidNode;
  aux.num_edge_nodes = 0;
  aux.num_link_arcs = 0;
  aux.num_transit_arcs = 0;

  // A link is usable when it survives the caller's mask, still has available
  // wavelengths (residual network membership), and — for G_c / G_rc — its
  // load is strictly below ϑ.
  auto usable = [&](EdgeId e) {
    if (!opt.link_enabled.empty() &&
        !opt.link_enabled[static_cast<std::size_t>(e)]) {
      return false;
    }
    if (net.available(e).empty()) return false;
    if (filter_by_theta) {
      const double load = net.link_load(e);
      if (opt.include_at_threshold ? load > opt.theta : load >= opt.theta) {
        return false;
      }
    }
    return true;
  };

  // Edge-nodes: out_node_[e] = u_out^e, in_node_[e] = v_in^e.
  out_node_.assign(static_cast<std::size_t>(pg.num_edges()),
                   graph::kInvalidNode);
  in_node_.assign(static_cast<std::size_t>(pg.num_edges()),
                  graph::kInvalidNode);
  auto new_node = [&](EdgeId e, bool is_in) {
    const NodeId v = aux.g.add_node();
    aux.phys_edge_of_node.push_back(e);
    aux.is_in_node.push_back(is_in ? 1 : 0);
    return v;
  };
  for (EdgeId e = 0; e < pg.num_edges(); ++e) {
    if (!usable(e)) continue;
    out_node_[static_cast<std::size_t>(e)] = new_node(e, false);
    in_node_[static_cast<std::size_t>(e)] = new_node(e, true);
    aux.num_edge_nodes += 2;
  }
  aux.s_prime = new_node(graph::kInvalidEdge, false);
  aux.t_second = new_node(graph::kInvalidEdge, true);

  auto add_arc = [&](NodeId a, NodeId b, double weight, EdgeId phys) {
    aux.g.add_edge(a, b);
    aux.w.push_back(weight);
    aux.phys_edge_of_arc.push_back(phys);
  };

  // Link arcs u_out^e -> v_in^e.
  for (EdgeId e = 0; e < pg.num_edges(); ++e) {
    if (out_node_[static_cast<std::size_t>(e)] == graph::kInvalidNode) continue;
    double weight = 0.0;
    switch (opt.weighting) {
      case AuxWeighting::kCost: {
        double sum = 0.0;
        int count = 0;
        link_costs(net, e, &sum, &count);
        WDM_DCHECK(count > 0);
        weight = sum / count;
        break;
      }
      case AuxWeighting::kLoadExponential: {
        const double u = net.usage(e);
        const double cap = net.capacity(e);
        weight = std::pow(opt.load_base, (u + 1.0) / cap) -
                 std::pow(opt.load_base, u / cap);
        break;
      }
      case AuxWeighting::kCostLoadFiltered: {
        // Paper formula: Σ_{λ∈Λ_avail(e)} w(e,λ) / N(e). Dividing by N(e)
        // rather than |Λ_avail(e)| under-weights partially loaded links; we
        // follow the paper as written by default (see header comment) and
        // expose the true mean as an ablation.
        double sum = 0.0;
        int count = 0;
        link_costs(net, e, &sum, &count);
        weight = sum / (opt.grc_mean_over_available ? count
                                                    : net.capacity(e));
        break;
      }
    }
    add_arc(out_node_[static_cast<std::size_t>(e)],
            in_node_[static_cast<std::size_t>(e)], weight, e);
    ++aux.num_link_arcs;
  }

  // Transit arcs v_in^e -> v_out^e' when some available conversion exists.
  for (NodeId v = 0; v < pg.num_nodes(); ++v) {
    const auto in_edges = pg.in_edges(v);
    const auto out_edges = pg.out_edges(v);
    const std::size_t base = pair_base_[static_cast<std::size_t>(v)];
    const std::size_t out_deg = out_edges.size();
    if (opt.protect_nodes && v != s && v != t) {
      // Node gadget: every transit at v funnels through one hub arc of
      // capacity 1 (for Suurballe's purposes: one edge), making the two
      // auxiliary paths internally node-disjoint in G.
      double sum = 0.0;
      int pairs = 0;
      for (std::size_t i = 0; i < in_edges.size(); ++i) {
        const EdgeId e = in_edges[i];
        if (in_node_[static_cast<std::size_t>(e)] == graph::kInvalidNode) {
          continue;
        }
        for (std::size_t j = 0; j < out_deg; ++j) {
          const EdgeId e2 = out_edges[j];
          if (out_node_[static_cast<std::size_t>(e2)] == graph::kInvalidNode) {
            continue;
          }
          double mean = 0.0;
          if (transit_mean(net, v, base + i * out_deg + j, e, e2, &mean)) {
            sum += mean;
            ++pairs;
          }
        }
      }
      if (pairs == 0) continue;  // v cannot be transited at all
      const double hub_weight =
          (opt.weighting == AuxWeighting::kLoadExponential) ? 0.0
                                                            : sum / pairs;
      const NodeId hub_in = new_node(graph::kInvalidEdge, true);
      const NodeId hub_out = new_node(graph::kInvalidEdge, false);
      add_arc(hub_in, hub_out, hub_weight, graph::kInvalidEdge);
      ++aux.num_transit_arcs;
      for (const EdgeId e : in_edges) {
        const NodeId a = in_node_[static_cast<std::size_t>(e)];
        if (a != graph::kInvalidNode) {
          add_arc(a, hub_in, 0.0, graph::kInvalidEdge);
        }
      }
      for (const EdgeId e2 : out_edges) {
        const NodeId b = out_node_[static_cast<std::size_t>(e2)];
        if (b != graph::kInvalidNode) {
          add_arc(hub_out, b, 0.0, graph::kInvalidEdge);
        }
      }
      continue;
    }
    for (std::size_t i = 0; i < in_edges.size(); ++i) {
      const EdgeId e = in_edges[i];
      const NodeId a = in_node_[static_cast<std::size_t>(e)];
      if (a == graph::kInvalidNode) continue;
      for (std::size_t j = 0; j < out_deg; ++j) {
        const EdgeId e2 = out_edges[j];
        const NodeId b = out_node_[static_cast<std::size_t>(e2)];
        if (b == graph::kInvalidNode) continue;
        double mean = 0.0;
        if (!transit_mean(net, v, base + i * out_deg + j, e, e2, &mean)) {
          continue;
        }
        const double weight =
            (opt.weighting == AuxWeighting::kLoadExponential) ? 0.0 : mean;
        add_arc(a, b, weight, graph::kInvalidEdge);
        ++aux.num_transit_arcs;
      }
    }
  }

  // Hub arcs.
  for (EdgeId e : pg.out_edges(s)) {
    const NodeId b = out_node_[static_cast<std::size_t>(e)];
    if (b != graph::kInvalidNode) {
      add_arc(aux.s_prime, b, 0.0, graph::kInvalidEdge);
    }
  }
  for (EdgeId e : pg.in_edges(t)) {
    const NodeId a = in_node_[static_cast<std::size_t>(e)];
    if (a != graph::kInvalidNode) {
      add_arc(a, aux.t_second, 0.0, graph::kInvalidEdge);
    }
  }
  if (tel_timer.on()) {
    tel_timer.total(WDM_TEL_HIST("rwa.aux_builder.build_ns"),
                    WDM_TEL_NAME("rwa.aux_builder.build"));
    WDM_TEL_COUNT("rwa.aux_builder.builds");
    WDM_TEL_COUNT_N("rwa.aux_builder.conv_hits",
                    stats_.conv_hits - tel_before.conv_hits);
    WDM_TEL_COUNT_N("rwa.aux_builder.conv_misses",
                    stats_.conv_misses - tel_before.conv_misses);
    WDM_TEL_COUNT_N("rwa.aux_builder.link_hits",
                    stats_.link_hits - tel_before.link_hits);
    WDM_TEL_COUNT_N("rwa.aux_builder.link_misses",
                    stats_.link_misses - tel_before.link_misses);
    WDM_TEL_COUNT_N("rwa.aux_builder.rebinds",
                    stats_.rebinds - tel_before.rebinds);
  }
  return aux_;
}

void AuxGraphBuilder::build_batch(
    const net::WdmNetwork& net,
    std::span<const std::pair<net::NodeId, net::NodeId>> queries,
    const AuxGraphOptions& opt,
    const std::function<void(std::size_t, const AuxGraph&)>& fn) {
  for (std::size_t i = 0; i < queries.size(); ++i) {
    fn(i, build(net, queries[i].first, queries[i].second, opt));
  }
}

AuxGraph AuxGraphBuilder::take_last() {
  AuxGraph out = std::move(aux_);
  aux_ = AuxGraph{};
  return out;
}

AuxGraphBuilderPool::Lease::~Lease() {
  if (builder_ != nullptr) pool_->put(std::move(builder_));
}

AuxGraphBuilderPool::Lease AuxGraphBuilderPool::lease() {
  std::unique_ptr<AuxGraphBuilder> builder;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (!idle_.empty()) {
      builder = std::move(idle_.back());
      idle_.pop_back();
    }
  }
  if (builder == nullptr) builder = std::make_unique<AuxGraphBuilder>();
  return Lease(this, std::move(builder));
}

AuxGraphBuilderPool::Lease AuxGraphBuilderPool::lease(
    const net::WdmNetwork& net) {
  std::unique_ptr<AuxGraphBuilder> builder;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    // Exact uid match first (warm caches), then a never-bound builder (no
    // caches to destroy), then LIFO (evicts some other network's warmth).
    std::size_t pick = idle_.size();
    for (std::size_t i = idle_.size(); i-- > 0;) {
      if (idle_[i]->bound_uid() == net.uid()) {
        pick = i;
        break;
      }
      if (pick == idle_.size() && idle_[i]->bound_uid() == 0) pick = i;
    }
    if (pick == idle_.size() && !idle_.empty()) pick = idle_.size() - 1;
    if (pick < idle_.size()) {
      builder = std::move(idle_[pick]);
      idle_.erase(idle_.begin() + static_cast<std::ptrdiff_t>(pick));
    }
  }
  if (builder == nullptr) builder = std::make_unique<AuxGraphBuilder>();
  return Lease(this, std::move(builder));
}

std::size_t AuxGraphBuilderPool::idle_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return idle_.size();
}

void AuxGraphBuilderPool::put(std::unique_ptr<AuxGraphBuilder> builder) {
  const std::lock_guard<std::mutex> lock(mu_);
  idle_.push_back(std::move(builder));
}

AuxGraph build_aux_graph(const net::WdmNetwork& net, net::NodeId s,
                         net::NodeId t, const AuxGraphOptions& opt) {
  AuxGraphBuilder builder;
  builder.build(net, s, t, opt);
  return builder.take_last();
}

std::vector<EdgeId> AuxGraph::project(const graph::Path& p) const {
  std::vector<EdgeId> links;
  for (EdgeId arc : p.edges) {
    const EdgeId phys = phys_edge_of_arc[static_cast<std::size_t>(arc)];
    if (phys != graph::kInvalidEdge) links.push_back(phys);
  }
  return links;
}

std::vector<std::uint8_t> AuxGraph::induced_link_mask(
    const graph::Path& p, graph::EdgeId num_links) const {
  std::vector<std::uint8_t> mask(static_cast<std::size_t>(num_links), 0);
  for (EdgeId link : project(p)) mask[static_cast<std::size_t>(link)] = 1;
  return mask;
}

}  // namespace wdm::rwa
