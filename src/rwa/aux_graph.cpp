#include "rwa/aux_graph.hpp"

#include <cmath>

#include "support/check.hpp"

namespace wdm::rwa {

using graph::EdgeId;
using graph::NodeId;

bool mean_conversion_cost(const net::WdmNetwork& net, net::NodeId v,
                          graph::EdgeId in_link, graph::EdgeId out_link,
                          double* mean_out) {
  const auto& table = net.conversion(v);
  const net::WavelengthSet from = net.available(in_link);
  const net::WavelengthSet to = net.available(out_link);
  double sum = 0.0;
  int pairs = 0;
  from.for_each([&](net::Wavelength a) {
    to.for_each([&](net::Wavelength b) {
      if (table.allowed(a, b)) {
        sum += table.cost(a, b);
        ++pairs;
      }
    });
  });
  if (pairs == 0) return false;
  if (mean_out != nullptr) *mean_out = sum / pairs;
  return true;
}

AuxGraph build_aux_graph(const net::WdmNetwork& net, net::NodeId s,
                         net::NodeId t, const AuxGraphOptions& opt) {
  const auto& pg = net.graph();
  WDM_CHECK(pg.valid_node(s) && pg.valid_node(t));
  WDM_CHECK(s != t);
  WDM_CHECK(opt.link_enabled.empty() ||
            opt.link_enabled.size() == static_cast<std::size_t>(pg.num_edges()));
  const bool filter_by_theta = opt.weighting != AuxWeighting::kCost;
  if (opt.weighting == AuxWeighting::kLoadExponential) {
    WDM_CHECK_MSG(opt.load_base > 1.0, "G_c requires exponent base a > 1");
  }

  AuxGraph aux;

  // A link is usable when it survives the caller's mask, still has available
  // wavelengths (residual network membership), and — for G_c / G_rc — its
  // load is strictly below ϑ.
  auto usable = [&](EdgeId e) {
    if (!opt.link_enabled.empty() &&
        !opt.link_enabled[static_cast<std::size_t>(e)]) {
      return false;
    }
    if (net.available(e).empty()) return false;
    if (filter_by_theta) {
      const double load = net.link_load(e);
      if (opt.include_at_threshold ? load > opt.theta : load >= opt.theta) {
        return false;
      }
    }
    return true;
  };

  // Edge-nodes: out_node[e] = u_out^e, in_node[e] = v_in^e.
  std::vector<NodeId> out_node(static_cast<std::size_t>(pg.num_edges()),
                               graph::kInvalidNode);
  std::vector<NodeId> in_node(static_cast<std::size_t>(pg.num_edges()),
                              graph::kInvalidNode);
  auto new_node = [&](EdgeId e, bool is_in) {
    const NodeId v = aux.g.add_node();
    aux.phys_edge_of_node.push_back(e);
    aux.is_in_node.push_back(is_in ? 1 : 0);
    return v;
  };
  for (EdgeId e = 0; e < pg.num_edges(); ++e) {
    if (!usable(e)) continue;
    out_node[static_cast<std::size_t>(e)] = new_node(e, false);
    in_node[static_cast<std::size_t>(e)] = new_node(e, true);
    aux.num_edge_nodes += 2;
  }
  aux.s_prime = new_node(graph::kInvalidEdge, false);
  aux.t_second = new_node(graph::kInvalidEdge, true);

  auto add_arc = [&](NodeId a, NodeId b, double weight, EdgeId phys) {
    aux.g.add_edge(a, b);
    aux.w.push_back(weight);
    aux.phys_edge_of_arc.push_back(phys);
  };

  // Link arcs u_out^e -> v_in^e.
  for (EdgeId e = 0; e < pg.num_edges(); ++e) {
    if (out_node[static_cast<std::size_t>(e)] == graph::kInvalidNode) continue;
    double weight = 0.0;
    switch (opt.weighting) {
      case AuxWeighting::kCost:
        weight = net.mean_available_weight(e);
        break;
      case AuxWeighting::kLoadExponential: {
        const double u = net.usage(e);
        const double cap = net.capacity(e);
        weight = std::pow(opt.load_base, (u + 1.0) / cap) -
                 std::pow(opt.load_base, u / cap);
        break;
      }
      case AuxWeighting::kCostLoadFiltered: {
        // Paper formula: Σ_{λ∈Λ_avail(e)} w(e,λ) / N(e). Dividing by N(e)
        // rather than |Λ_avail(e)| under-weights partially loaded links; we
        // follow the paper as written by default (see header comment) and
        // expose the true mean as an ablation.
        double sum = 0.0;
        net.available(e).for_each(
            [&](net::Wavelength l) { sum += net.weight(e, l); });
        weight = sum / (opt.grc_mean_over_available
                            ? net.available(e).count()
                            : net.capacity(e));
        break;
      }
    }
    add_arc(out_node[static_cast<std::size_t>(e)],
            in_node[static_cast<std::size_t>(e)], weight, e);
    ++aux.num_link_arcs;
  }

  // Transit arcs v_in^e -> v_out^e' when some available conversion exists.
  for (NodeId v = 0; v < pg.num_nodes(); ++v) {
    if (opt.protect_nodes && v != s && v != t) {
      // Node gadget: every transit at v funnels through one hub arc of
      // capacity 1 (for Suurballe's purposes: one edge), making the two
      // auxiliary paths internally node-disjoint in G.
      double sum = 0.0;
      int pairs = 0;
      for (EdgeId e : pg.in_edges(v)) {
        if (in_node[static_cast<std::size_t>(e)] == graph::kInvalidNode) {
          continue;
        }
        for (EdgeId e2 : pg.out_edges(v)) {
          if (out_node[static_cast<std::size_t>(e2)] == graph::kInvalidNode) {
            continue;
          }
          double mean = 0.0;
          if (mean_conversion_cost(net, v, e, e2, &mean)) {
            sum += mean;
            ++pairs;
          }
        }
      }
      if (pairs == 0) continue;  // v cannot be transited at all
      const double hub_weight =
          (opt.weighting == AuxWeighting::kLoadExponential) ? 0.0
                                                            : sum / pairs;
      const NodeId hub_in = new_node(graph::kInvalidEdge, true);
      const NodeId hub_out = new_node(graph::kInvalidEdge, false);
      add_arc(hub_in, hub_out, hub_weight, graph::kInvalidEdge);
      ++aux.num_transit_arcs;
      for (EdgeId e : pg.in_edges(v)) {
        const NodeId a = in_node[static_cast<std::size_t>(e)];
        if (a != graph::kInvalidNode) {
          add_arc(a, hub_in, 0.0, graph::kInvalidEdge);
        }
      }
      for (EdgeId e2 : pg.out_edges(v)) {
        const NodeId b = out_node[static_cast<std::size_t>(e2)];
        if (b != graph::kInvalidNode) {
          add_arc(hub_out, b, 0.0, graph::kInvalidEdge);
        }
      }
      continue;
    }
    for (EdgeId e : pg.in_edges(v)) {
      const NodeId a = in_node[static_cast<std::size_t>(e)];
      if (a == graph::kInvalidNode) continue;
      for (EdgeId e2 : pg.out_edges(v)) {
        const NodeId b = out_node[static_cast<std::size_t>(e2)];
        if (b == graph::kInvalidNode) continue;
        double mean = 0.0;
        if (!mean_conversion_cost(net, v, e, e2, &mean)) continue;
        const double weight =
            (opt.weighting == AuxWeighting::kLoadExponential) ? 0.0 : mean;
        add_arc(a, b, weight, graph::kInvalidEdge);
        ++aux.num_transit_arcs;
      }
    }
  }

  // Hub arcs.
  for (EdgeId e : pg.out_edges(s)) {
    const NodeId b = out_node[static_cast<std::size_t>(e)];
    if (b != graph::kInvalidNode) add_arc(aux.s_prime, b, 0.0, graph::kInvalidEdge);
  }
  for (EdgeId e : pg.in_edges(t)) {
    const NodeId a = in_node[static_cast<std::size_t>(e)];
    if (a != graph::kInvalidNode) add_arc(a, aux.t_second, 0.0, graph::kInvalidEdge);
  }
  return aux;
}

std::vector<EdgeId> AuxGraph::project(const graph::Path& p) const {
  std::vector<EdgeId> links;
  for (EdgeId arc : p.edges) {
    const EdgeId phys = phys_edge_of_arc[static_cast<std::size_t>(arc)];
    if (phys != graph::kInvalidEdge) links.push_back(phys);
  }
  return links;
}

std::vector<std::uint8_t> AuxGraph::induced_link_mask(
    const graph::Path& p, graph::EdgeId num_links) const {
  std::vector<std::uint8_t> mask(static_cast<std::size_t>(num_links), 0);
  for (EdgeId link : project(p)) mask[static_cast<std::size_t>(link)] = 1;
  return mask;
}

}  // namespace wdm::rwa
