#include "rwa/ilp_router.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "support/check.hpp"

namespace wdm::rwa {

namespace {

using graph::EdgeId;
using graph::NodeId;

/// Variable ids for one commodity (primary x or backup y).
struct FlowVars {
  // var_of[e * W + l] = model variable index, or -1 when λ_l ∉ Λ_avail(e).
  std::vector<int> var_of;

  int at(const net::WdmNetwork& net, EdgeId e, net::Wavelength l) const {
    return var_of[static_cast<std::size_t>(e) *
                      static_cast<std::size_t>(net.W()) +
                  static_cast<std::size_t>(l)];
  }
};

FlowVars make_flow_vars(ilp::Model& model, const net::WdmNetwork& net,
                        const char* prefix) {
  FlowVars f;
  f.var_of.assign(static_cast<std::size_t>(net.num_links()) *
                      static_cast<std::size_t>(net.W()),
                  -1);
  for (EdgeId e = 0; e < net.num_links(); ++e) {
    net.available(e).for_each([&](net::Wavelength l) {
      const int v = model.add_binary(
          net.weight(e, l),
          std::string(prefix) + std::to_string(e) + "_" + std::to_string(l));
      f.var_of[static_cast<std::size_t>(e) * static_cast<std::size_t>(net.W()) +
               static_cast<std::size_t>(l)] = v;
    });
  }
  return f;
}

/// Adds Eqs. (4)-(9) (or (10)-(15) for the backup commodity).
void add_flow_constraints(ilp::Model& model, const net::WdmNetwork& net,
                          const FlowVars& f, NodeId s, NodeId t) {
  const auto& g = net.graph();
  // (4): one wavelength per chosen link.
  for (EdgeId e = 0; e < net.num_links(); ++e) {
    std::vector<ilp::LinearTerm> terms;
    net.available(e).for_each([&](net::Wavelength l) {
      terms.push_back({f.at(net, e, l), 1.0});
    });
    if (!terms.empty()) {
      model.add_constraint(std::move(terms), ilp::Sense::kLe, 1.0);
    }
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    std::vector<ilp::LinearTerm> out_terms, in_terms;
    for (EdgeId e : g.out_edges(v)) {
      net.available(e).for_each([&](net::Wavelength l) {
        out_terms.push_back({f.at(net, e, l), 1.0});
      });
    }
    for (EdgeId e : g.in_edges(v)) {
      net.available(e).for_each([&](net::Wavelength l) {
        in_terms.push_back({f.at(net, e, l), 1.0});
      });
    }
    if (v == s) {
      // (8): unit flow out of s. (6) excludes s from the incoming cap; we
      // additionally pin incoming flow at s to 0 to rule out cycles through
      // the source.
      model.add_constraint(out_terms, ilp::Sense::kEq, 1.0);
      if (!in_terms.empty()) {
        model.add_constraint(in_terms, ilp::Sense::kEq, 0.0);
      }
    } else if (v == t) {
      // (9): unit flow into t; outgoing pinned to 0 (same cycle guard).
      model.add_constraint(in_terms, ilp::Sense::kEq, 1.0);
      if (!out_terms.empty()) {
        model.add_constraint(out_terms, ilp::Sense::kEq, 0.0);
      }
    } else {
      // (5)/(6): at most one incoming / outgoing link; (7): conservation.
      if (!out_terms.empty()) {
        model.add_constraint(out_terms, ilp::Sense::kLe, 1.0);
      }
      if (!in_terms.empty()) {
        model.add_constraint(in_terms, ilp::Sense::kLe, 1.0);
      }
      std::vector<ilp::LinearTerm> conserve = out_terms;
      for (ilp::LinearTerm term : in_terms) {
        term.coeff = -1.0;
        conserve.push_back(term);
      }
      if (!conserve.empty()) {
        model.add_constraint(std::move(conserve), ilp::Sense::kEq, 0.0);
      }
    }
  }
}

/// Adds the conversion-cost linearization (17)/(20) (resp. (18)/(21)):
/// one continuous z per adjacent link pair, z ≥ c·(x_in + x_out − 1) for
/// every allowed wavelength pair, plus forbidding cuts for disallowed pairs.
void add_conversion_costs(ilp::Model& model, const net::WdmNetwork& net,
                          const FlowVars& f, NodeId s, NodeId t,
                          const char* prefix) {
  const auto& g = net.graph();
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (v == s || v == t) continue;  // conversions only at intermediates
    const auto& table = net.conversion(v);
    for (EdgeId ein : g.in_edges(v)) {
      if (net.available(ein).empty()) continue;
      for (EdgeId eout : g.out_edges(v)) {
        if (net.available(eout).empty()) continue;
        int z = -1;
        net.available(ein).for_each([&](net::Wavelength l1) {
          net.available(eout).for_each([&](net::Wavelength l2) {
            const int xin = f.at(net, ein, l1);
            const int xout = f.at(net, eout, l2);
            if (!table.allowed(l1, l2)) {
              model.add_constraint({{xin, 1.0}, {xout, 1.0}}, ilp::Sense::kLe,
                                   1.0);
              return;
            }
            const double c = table.cost(l1, l2);
            if (c <= 0.0) return;  // z ≥ 0 already dominates
            if (z < 0) {
              z = model.add_continuous(
                  0.0, ilp::kInfinity, 1.0,
                  std::string(prefix) + "z_" + std::to_string(ein) + "_" +
                      std::to_string(eout));
            }
            // z ≥ c·(x_in + x_out − 1)  ⇔  c·x_in + c·x_out − z ≤ c.
            model.add_constraint({{xin, c}, {xout, c}, {z, -1.0}},
                                 ilp::Sense::kLe, c);
          });
        });
      }
    }
  }
}

/// Walks the unit flow encoded in `x` from s to t, reading off wavelengths.
net::Semilightpath decode_flow(const net::WdmNetwork& net, const FlowVars& f,
                               const std::vector<double>& x, NodeId s,
                               NodeId t) {
  const auto& g = net.graph();
  net::Semilightpath slp;
  NodeId v = s;
  std::size_t guard = 0;
  while (v != t) {
    bool advanced = false;
    for (EdgeId e : g.out_edges(v)) {
      net::Wavelength chosen = net::kInvalidWavelength;
      net.available(e).for_each([&](net::Wavelength l) {
        const int var = f.at(net, e, l);
        if (chosen == net::kInvalidWavelength &&
            x[static_cast<std::size_t>(var)] > 0.5) {
          chosen = l;
        }
      });
      if (chosen != net::kInvalidWavelength) {
        slp.hops.push_back(net::Hop{e, chosen});
        v = g.head(e);
        advanced = true;
        break;
      }
    }
    WDM_CHECK_MSG(advanced, "IP solution does not encode an s-t flow");
    WDM_CHECK_MSG(++guard <= static_cast<std::size_t>(net.num_links()),
                  "IP flow decoding cycled");
  }
  slp.found = true;
  return slp;
}

}  // namespace

IlpRouteResult ilp_disjoint_pair(const net::WdmNetwork& net, net::NodeId s,
                                 net::NodeId t, const IlpRouteOptions& opt) {
  WDM_CHECK(net.graph().valid_node(s) && net.graph().valid_node(t) && s != t);
  IlpRouteResult out;

  ilp::Model model;
  const FlowVars x = make_flow_vars(model, net, "x_");
  const FlowVars y = make_flow_vars(model, net, "y_");
  add_flow_constraints(model, net, x, s, t);
  add_flow_constraints(model, net, y, s, t);
  add_conversion_costs(model, net, x, s, t, "p");
  add_conversion_costs(model, net, y, s, t, "b");

  // (16): each physical link serves at most one of the two paths.
  for (EdgeId e = 0; e < net.num_links(); ++e) {
    std::vector<ilp::LinearTerm> terms;
    net.available(e).for_each([&](net::Wavelength l) {
      terms.push_back({x.at(net, e, l), 1.0});
      terms.push_back({y.at(net, e, l), 1.0});
    });
    if (!terms.empty()) {
      model.add_constraint(std::move(terms), ilp::Sense::kLe, 1.0);
    }
  }

  out.num_variables = model.num_variables();
  out.num_constraints = model.num_constraints();

  ilp::IpOptions ip_opt;
  ip_opt.max_nodes = opt.max_nodes;
  const ilp::IpSolution sol = ilp::solve_ip(model, ip_opt);
  out.status = sol.status;
  out.nodes_explored = sol.nodes_explored;
  if (sol.status == ilp::IpStatus::kInfeasible) return out;
  out.objective = sol.objective;

  net::Semilightpath p1 = decode_flow(net, x, sol.x, s, t);
  net::Semilightpath p2 = decode_flow(net, y, sol.x, s, t);
  if (p2.cost(net) < p1.cost(net)) std::swap(p1, p2);
  out.result.found = true;
  out.result.route.found = true;
  out.result.route.primary = std::move(p1);
  out.result.route.backup = std::move(p2);
  return out;
}

}  // namespace wdm::rwa
