// The wavelength-layered graph behind the Liang–Shen optimal semilightpath
// algorithm [13], the single-path engine the paper composes with Suurballe.
//
// Each network node v expands into W in-copies and W out-copies, one pair per
// wavelength layer:
//   (v,λ)_in -> (v,λ')_out   conversion arc, weight c_v(λ,λ'), if allowed
//                            (λ = λ' is the free pass-through);
//   (u,λ)_out -> (v,λ)_in    traversal arc for link e=(u,v), weight w(e,λ),
//                            present iff λ ∈ Λ_avail(e).
// The in/out split enforces *one* conversion per node — without it Dijkstra
// could chain λa->λb->λc inside a node and undercut the c_v(λa,λc) the model
// charges. A super source fans into s's out-copies and t's in-copies fan
// into a super sink, both at zero weight.
//
// A shortest S->T path is exactly an optimal semilightpath: Eq. (1) decomposes
// over these arcs. Size: 2nW + 2 nodes, ≤ nW² + mW + 2W arcs — the source of
// the O(nW² + nW log(nW)) term in Theorems 1 and 3.
#pragma once

#include <functional>
#include <span>

#include "graph/digraph.hpp"
#include "graph/path.hpp"
#include "wdm/semilightpath.hpp"

namespace wdm::rwa {

using graph::EdgeId;
using graph::NodeId;

struct LayeredGraph {
  graph::Digraph g;
  std::vector<double> w;
  /// Per-arc hop: traversal arcs carry {physical edge, λ}; conversion and
  /// hub arcs carry {kInvalidEdge, kInvalidWavelength}.
  std::vector<net::Hop> hop_of_arc;
  NodeId source_hub = graph::kInvalidNode;
  NodeId sink_hub = graph::kInvalidNode;

  /// Builds the layered graph of the *residual* network for a query s -> t.
  /// `link_enabled` optionally confines it to a physical subgraph (empty =
  /// all links) — this is how the projection step of §3.3.2 runs the solver
  /// inside the induced subgraphs G_1, G_2.
  static LayeredGraph build(const net::WdmNetwork& net, NodeId s, NodeId t,
                            std::span<const std::uint8_t> link_enabled = {});

  /// Overrides for non-residual wavelength views (e.g. shared-backup
  /// provisioning, where channels already held by compatible backups are
  /// usable at near-zero marginal cost).
  struct Overrides {
    /// Usable wavelengths on a link (default: net.available).
    std::function<net::WavelengthSet(EdgeId)> available;
    /// Traversal weight (default: net.weight). Called only for wavelengths
    /// the `available` override returned.
    std::function<double(EdgeId, net::Wavelength)> weight;
  };

  static LayeredGraph build_with(const net::WdmNetwork& net, NodeId s,
                                 NodeId t, const Overrides& overrides,
                                 std::span<const std::uint8_t> link_enabled = {});

  /// Maps a path in the layered graph back to a semilightpath.
  net::Semilightpath to_semilightpath(const graph::Path& p) const;
};

/// The Liang–Shen algorithm: minimum-Eq.(1)-cost semilightpath from s to t in
/// the residual network (optionally confined to a physical subgraph).
/// Returns a not-found path when t is unreachable under the wavelength and
/// conversion constraints.
net::Semilightpath optimal_semilightpath(
    const net::WdmNetwork& net, NodeId s, NodeId t,
    std::span<const std::uint8_t> link_enabled = {});

/// Liang–Shen over an overridden wavelength view (see
/// LayeredGraph::Overrides).
net::Semilightpath optimal_semilightpath_with(
    const net::WdmNetwork& net, NodeId s, NodeId t,
    const LayeredGraph::Overrides& overrides,
    std::span<const std::uint8_t> link_enabled = {});

/// Cost of the optimal semilightpath, or +inf when none exists.
double optimal_semilightpath_cost(
    const net::WdmNetwork& net, NodeId s, NodeId t,
    std::span<const std::uint8_t> link_enabled = {});

}  // namespace wdm::rwa
