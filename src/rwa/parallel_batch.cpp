#include "rwa/parallel_batch.hpp"

#include <algorithm>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

#include "support/check.hpp"
#include "support/parallel.hpp"
#include "support/telemetry.hpp"
#include "wdm/network.hpp"

namespace wdm::rwa {

namespace {

/// Per-request speculation slot. All fields are guarded by Shared::mu; the
/// route computation itself runs unlocked against an immutable snapshot.
struct Slot {
  RouteResult res;
  std::uint64_t epoch = ~std::uint64_t{0};  // epoch `res` was computed in
  std::uint64_t claim_epoch = ~std::uint64_t{0};  // epoch of the latest claim
  std::uint64_t spec_span = 0;  // telemetry span id that produced `res`
  int attempts = 0;     // speculation claims (retries = attempts - 1)
  int in_flight = 0;    // outstanding route() calls for this slot
  bool has = false;     // res holds a published (possibly stale) result
};

struct Shared {
  std::mutex mu;
  std::condition_variable work_cv;    // workers: window opened / epoch / stop
  std::condition_variable result_cv;  // commit: a result landed

  std::vector<Slot> slots;
  std::shared_ptr<const net::WdmNetwork> snap;
  std::uint64_t cur_epoch = 0;
  std::size_t commit_idx = 0;  // next slot to finalize (policy order)
  std::size_t cursor = 0;      // next slot to claim for speculation
  std::size_t window = 1;
  int max_attempts = 1;  // 1 + max_speculation_retries
  bool stop = false;
  std::exception_ptr first_exception;

  ParallelBatchStats st;  // this run's counters

  bool claimable() const {
    return cursor < std::min(slots.size(), commit_idx + window);
  }
};

/// Joins the worker pool on every exit path (including exceptions thrown on
/// the commit thread) before Shared goes out of scope.
class WorkerPool {
 public:
  explicit WorkerPool(Shared& sh) : sh_(sh) {}
  ~WorkerPool() { stop_and_join(); }

  void add(std::thread t) { threads_.push_back(std::move(t)); }

  void stop_and_join() {
    {
      std::lock_guard<std::mutex> lk(sh_.mu);
      sh_.stop = true;
    }
    sh_.work_cv.notify_all();
    for (std::thread& t : threads_) {
      if (t.joinable()) t.join();
    }
    threads_.clear();
  }

 private:
  Shared& sh_;
  std::vector<std::thread> threads_;
};

void worker_loop(Shared& sh, int widx, const Router& router,
                 const std::vector<BatchRequest>& batch,
                 const std::vector<std::size_t>& perm) {
  if (support::telemetry::enabled()) {
    support::telemetry::set_thread_name("batch-worker-" +
                                        std::to_string(widx));
  }
  std::unique_lock<std::mutex> lk(sh.mu);
  for (;;) {
    sh.work_cv.wait(lk, [&] { return sh.stop || sh.claimable(); });
    if (sh.stop) return;
    const std::size_t i = sh.cursor++;
    Slot& sl = sh.slots[i];
    if (sl.attempts >= sh.max_attempts) continue;  // left to the commit thread
    ++sl.attempts;
    if (sl.attempts > 1) ++sh.st.retries;
    ++sl.in_flight;
    sl.claim_epoch = sh.cur_epoch;
    const std::uint64_t epoch = sh.cur_epoch;
    const BatchRequest& req = batch[perm[i]];
    {
      // Route unlocked against the immutable snapshot; the shared_ptr keeps
      // it alive (and un-reusable by the pool) for the duration.
      std::shared_ptr<const net::WdmNetwork> snap = sh.snap;
      lk.unlock();
      RouteResult r;
      std::uint64_t spec_span_id = 0;
      try {
        // Speculation span: a root of the request's trace on this worker's
        // track; its own id doubles as the flow id the commit span consumes.
        support::telemetry::TraceScope trace_scope({req.trace, 0});
        WDM_TEL_SPAN(spec_span, "rwa.batch.speculate");
        spec_span_id = spec_span.span_id();
        spec_span.flow_out(spec_span_id);
        r = router.route(*snap, req.s, req.t);
      } catch (...) {
        lk.lock();
        if (!sh.first_exception) sh.first_exception = std::current_exception();
        sh.stop = true;
        --sh.slots[i].in_flight;
        sh.work_cv.notify_all();
        sh.result_cv.notify_all();
        return;
      }
      lk.lock();
      ++sh.st.speculations;
      --sl.in_flight;
      if (epoch == sh.cur_epoch) {
        sl.res = std::move(r);
        sl.epoch = epoch;
        sl.spec_span = spec_span_id;
        sl.has = true;
      } else {
        ++sh.st.conflicts;  // a commit invalidated this speculation mid-route
      }
    }
    sh.result_cv.notify_all();
  }
}

}  // namespace

struct ParallelBatchEngine::SnapshotPool {
  std::vector<std::shared_ptr<net::WdmNetwork>> entries;
  // Identity of the base network the pooled copies were taken from; any
  // change (different object, topology growth, conversion-table swap)
  // flushes the pool — sync_residual_from only tracks usage and failure.
  std::uint64_t base_uid = 0;
  graph::NodeId base_nodes = -1;
  graph::EdgeId base_links = -1;
  int base_w = 0;
  std::uint64_t base_conv_sum = 0;

  static std::uint64_t conv_sum(const net::WdmNetwork& n) {
    std::uint64_t s = 0;
    for (graph::NodeId v = 0; v < n.num_nodes(); ++v) {
      s += n.conversion_revision(v);
    }
    return s;
  }

  std::shared_ptr<const net::WdmNetwork> publish(const net::WdmNetwork& live,
                                                 ParallelBatchStats& st) {
    const std::uint64_t cs = conv_sum(live);
    if (live.uid() != base_uid || live.num_nodes() != base_nodes ||
        live.num_links() != base_links || live.W() != base_w ||
        cs != base_conv_sum) {
      entries.clear();
      base_uid = live.uid();
      base_nodes = live.num_nodes();
      base_links = live.num_links();
      base_w = live.W();
      base_conv_sum = cs;
    }
    for (auto& sp : entries) {
      if (sp.use_count() == 1) {  // held only by the pool: free to refresh
        sp->sync_residual_from(live);
        ++st.snapshot_syncs;
        return sp;
      }
    }
    entries.push_back(std::make_shared<net::WdmNetwork>(live));
    ++st.snapshot_copies;
    return entries.back();
  }
};

ParallelBatchEngine::ParallelBatchEngine(ParallelBatchOptions opt)
    : opt_(opt), pool_(std::make_unique<SnapshotPool>()) {}

ParallelBatchEngine::~ParallelBatchEngine() = default;

int ParallelBatchEngine::resolved_threads() const {
  return opt_.threads > 0 ? opt_.threads : support::hardware_threads();
}

BatchOutcome ParallelBatchEngine::run(net::WdmNetwork& net,
                                      const Router& router,
                                      const std::vector<BatchRequest>& batch,
                                      BatchOrder order, support::Rng* rng) {
  const std::vector<std::size_t> perm =
      batch_order_permutation(net, batch, order, rng);
  BatchOutcome out;
  out.routes.resize(batch.size());
  stats_.requests += static_cast<long long>(batch.size());

  const int threads = resolved_threads();
  if (threads <= 1 || batch.size() <= 1) {
    // Serial path through the exact same commit helper — identical to
    // provision_batch by construction.
    WDM_TEL_COUNT_N("rwa.parallel_batch.requests", batch.size());
    for (std::size_t i : perm) {
      const BatchRequest& req = batch[i];
      support::telemetry::TraceScope trace_scope({req.trace, 0});
      WDM_TEL_SPAN(commit_span, "rwa.batch.commit_slot");
      detail::commit_route(net, router.route(net, req.s, req.t), i, out);
    }
    out.final_network_load = net.network_load();
    return out;
  }

  Shared sh;
  sh.slots.resize(batch.size());
  sh.window = opt_.window > 0 ? static_cast<std::size_t>(opt_.window)
                              : static_cast<std::size_t>(4 * threads);
  sh.window = std::max<std::size_t>(sh.window, 1);
  sh.max_attempts = 1 + std::max(0, opt_.max_speculation_retries);
  sh.snap = pool_->publish(net, sh.st);

  WorkerPool workers(sh);
  for (int w = 0; w < threads; ++w) {
    workers.add(std::thread(worker_loop, std::ref(sh), w, std::cref(router),
                            std::cref(batch), std::cref(perm)));
  }

  {
    std::unique_lock<std::mutex> lk(sh.mu);
    for (std::size_t k = 0; k < sh.slots.size(); ++k) {
      support::telemetry::SplitTimer tel_commit;
      sh.commit_idx = k;
      sh.work_cv.notify_all();  // the speculation window moved forward
      Slot& sl = sh.slots[k];
      // Commit span: root of the request's trace on the commit thread's
      // track; validation waits and re-route calls below nest under it, and
      // a consumed speculation draws a flow arrow into it.
      support::telemetry::TraceScope trace_scope({batch[perm[k]].trace, 0});
      WDM_TEL_SPAN(commit_span, "rwa.batch.commit_slot");
      RouteResult r;
      bool from_spec = false;
      for (;;) {
        if (sh.first_exception) break;
        if (sl.has && sl.epoch == sh.cur_epoch) {
          r = std::move(sl.res);
          sl.has = false;
          from_spec = true;
          break;
        }
        if (sl.has) {  // published against a superseded epoch
          sl.has = false;
          ++sh.st.conflicts;
          continue;
        }
        if (sl.in_flight > 0 && sl.claim_epoch == sh.cur_epoch) {
          sh.result_cv.wait(lk);  // a fresh speculation is coming
          continue;
        }
        // No usable speculation in flight: route it on the commit thread
        // against the live network (the serial state by induction).
        if (sl.attempts >= sh.max_attempts) ++sh.st.serial_fallbacks;
        ++sh.st.commit_reroutes;
        if (sh.cursor <= k) sh.cursor = k + 1;  // nobody else claims k
        const BatchRequest& req = batch[perm[k]];
        lk.unlock();
        RouteResult mine;
        try {
          mine = router.route(net, req.s, req.t);
        } catch (...) {
          lk.lock();
          if (!sh.first_exception) sh.first_exception = std::current_exception();
          break;
        }
        lk.lock();
        r = std::move(mine);
        break;
      }
      if (sh.first_exception) break;

      if (from_spec) {
        ++sh.st.spec_commits;
        commit_span.flow_in(sl.spec_span);
      }
      // The serial accept/drop decision, evaluated against the live network.
      if (detail::commit_route(net, r, perm[k], out)) {
        ++sh.cur_epoch;
        ++sh.st.epochs;
        sh.snap = pool_->publish(net, sh.st);
        sh.cursor = k + 1;  // everything past k must re-speculate
        sh.work_cv.notify_all();
      }
      // Finalize latency for this slot: wait-for-speculation + validation +
      // commit (the batch-mode provisioning critical path).
      tel_commit.total(WDM_TEL_HIST("rwa.parallel_batch.commit_slot_ns"));
    }
    sh.stop = true;
  }
  sh.work_cv.notify_all();
  workers.stop_and_join();

  // Merge this run's counters (single-threaded again: workers are gone).
  stats_.speculations += sh.st.speculations;
  stats_.spec_commits += sh.st.spec_commits;
  stats_.conflicts += sh.st.conflicts;
  stats_.retries += sh.st.retries;
  stats_.commit_reroutes += sh.st.commit_reroutes;
  stats_.serial_fallbacks += sh.st.serial_fallbacks;
  stats_.epochs += sh.st.epochs;
  stats_.snapshot_syncs += sh.st.snapshot_syncs;
  stats_.snapshot_copies += sh.st.snapshot_copies;

  // Speculation wins / invalidations / re-routes for this run. These depend
  // on scheduling (thread count, timing) and are intentionally outside the
  // deterministic `sim.*` counter namespace.
  if (support::telemetry::enabled()) {
    WDM_TEL_COUNT_N("rwa.parallel_batch.requests", batch.size());
    WDM_TEL_COUNT_N("rwa.parallel_batch.speculations", sh.st.speculations);
    WDM_TEL_COUNT_N("rwa.parallel_batch.spec_commits", sh.st.spec_commits);
    WDM_TEL_COUNT_N("rwa.parallel_batch.conflicts", sh.st.conflicts);
    WDM_TEL_COUNT_N("rwa.parallel_batch.retries", sh.st.retries);
    WDM_TEL_COUNT_N("rwa.parallel_batch.commit_reroutes",
                    sh.st.commit_reroutes);
    WDM_TEL_COUNT_N("rwa.parallel_batch.serial_fallbacks",
                    sh.st.serial_fallbacks);
    WDM_TEL_COUNT_N("rwa.parallel_batch.epochs", sh.st.epochs);
    WDM_TEL_COUNT_N("rwa.parallel_batch.snapshot_syncs", sh.st.snapshot_syncs);
    WDM_TEL_COUNT_N("rwa.parallel_batch.snapshot_copies",
                    sh.st.snapshot_copies);
  }

  if (sh.first_exception) std::rethrow_exception(sh.first_exception);

  out.final_network_load = net.network_load();
  return out;
}

}  // namespace wdm::rwa
