#include "rwa/parallel_batch.hpp"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

#include "rwa/footprint.hpp"
#include "support/check.hpp"
#include "support/parallel.hpp"
#include "support/telemetry.hpp"
#include "wdm/network.hpp"

namespace wdm::rwa {

namespace {

/// Per-request speculation slot. All fields are guarded by Shared::mu; the
/// route computation itself runs unlocked against an immutable snapshot.
struct Slot {
  RouteResult res;
  RouteFootprint fp;            // read set of `res`
  std::uint64_t base_epoch = 0;  // epoch `res`/`fp` were computed against
  std::uint64_t spec_span = 0;   // telemetry span id that produced `res`
  int attempts = 0;     // speculation claims (retries = attempts - 1)
  int in_flight = 0;    // outstanding route() calls for this slot
  bool has = false;     // res holds a published, not-yet-judged result
  bool queued = false;  // sits in the retry queue
  bool done = false;    // finalized by the commit thread
};

struct Shared {
  std::mutex mu;
  std::condition_variable work_cv;    // workers: window opened / retry / stop
  std::condition_variable result_cv;  // commit: a result landed

  std::vector<Slot> slots;
  std::shared_ptr<const net::WdmNetwork> snap;
  std::uint64_t cur_epoch = 0;
  std::size_t commit_idx = 0;  // next slot to finalize (policy order)
  std::size_t cursor = 0;      // next never-claimed slot
  std::deque<std::size_t> retry_q;  // invalidated slots to re-speculate
  std::size_t window = 1;
  int max_attempts = 1;  // 1 + max_speculation_retries
  bool force_epoch = false;
  bool stop = false;
  std::exception_ptr first_exception;

  FootprintValidator validator;
  ParallelBatchStats st;  // this run's counters

  std::size_t claim_limit() const {
    return std::min(slots.size(), commit_idx + window);
  }
  bool claimable() const {
    return !retry_q.empty() || cursor < claim_limit();
  }
  /// Would a speculation with footprint `fp` computed at `base` reproduce
  /// bit-for-bit against the live network right now?
  bool spec_valid(const RouteFootprint& fp, std::uint64_t base) const {
    if (force_epoch) return base == cur_epoch;
    return validator.valid(fp, base);
  }
};

/// Joins the worker pool on every exit path (including exceptions thrown on
/// the commit thread) before Shared goes out of scope.
class WorkerPool {
 public:
  explicit WorkerPool(Shared& sh) : sh_(sh) {}
  ~WorkerPool() { stop_and_join(); }

  void add(std::thread t) { threads_.push_back(std::move(t)); }

  void stop_and_join() {
    {
      std::lock_guard<std::mutex> lk(sh_.mu);
      sh_.stop = true;
    }
    sh_.work_cv.notify_all();
    for (std::thread& t : threads_) {
      if (t.joinable()) t.join();
    }
    threads_.clear();
  }

 private:
  Shared& sh_;
  std::vector<std::thread> threads_;
};

void worker_loop(Shared& sh, int widx, const Router& router,
                 const std::vector<BatchRequest>& batch,
                 const std::vector<std::size_t>& perm) {
  // Per-worker cumulative busy/idle time. The names are runtime-built
  // (worker index), so the handles are resolved here — once per pool entry,
  // off the hot path — never through the static-caching macros.
  support::telemetry::Counter* c_busy = nullptr;
  support::telemetry::Counter* c_idle = nullptr;
  if (support::telemetry::enabled()) {
    support::telemetry::set_thread_name("batch-worker-" +
                                        std::to_string(widx));
    const std::string prefix =
        "rwa.parallel_batch.worker." + std::to_string(widx);
    c_busy = &support::telemetry::counter(prefix + ".busy_ns");
    c_idle = &support::telemetry::counter(prefix + ".idle_ns");
  }
  std::unique_lock<std::mutex> lk(sh.mu);
  for (;;) {
    const std::uint64_t t_idle0 =
        support::telemetry::enabled() ? support::telemetry::now_ns() : 0;
    sh.work_cv.wait(lk, [&] { return sh.stop || sh.claimable(); });
    if (t_idle0 != 0) {
      const std::uint64_t idle = support::telemetry::now_ns() - t_idle0;
      WDM_TEL_HIST("rwa.parallel_batch.worker_idle_ns").record_ns(idle);
      if (c_idle != nullptr) c_idle->add(idle);
    }
    if (sh.stop) return;
    std::size_t i;
    if (!sh.retry_q.empty()) {
      i = sh.retry_q.front();
      sh.retry_q.pop_front();
      sh.slots[i].queued = false;
      WDM_TEL_GAUGE_SET("rwa.parallel_batch.retry_queue_depth",
                        sh.retry_q.size());
    } else {
      i = sh.cursor++;
    }
    Slot& sl = sh.slots[i];
    if (sl.done || sl.attempts >= sh.max_attempts) continue;
    ++sl.attempts;
    if (sl.attempts > 1) ++sh.st.retries;
    ++sl.in_flight;
    const std::uint64_t base = sh.cur_epoch;
    const BatchRequest& req = batch[perm[i]];
    {
      // Route unlocked against the immutable snapshot; the shared_ptr keeps
      // it alive (and un-reusable by the pool) for the duration.
      std::shared_ptr<const net::WdmNetwork> snap = sh.snap;
      lk.unlock();
      const std::uint64_t t_busy0 =
          support::telemetry::enabled() ? support::telemetry::now_ns() : 0;
      WDM_TEL_GAUGE_ADD("rwa.parallel_batch.busy_workers", 1.0);
      RouteResult r;
      RouteFootprint fp;
      std::uint64_t spec_span_id = 0;
      try {
        // Speculation span: a root of the request's trace on this worker's
        // track; its own id doubles as the flow id the commit span consumes.
        support::telemetry::TraceScope trace_scope({req.trace, 0});
        WDM_TEL_SPAN(spec_span, "rwa.batch.speculate");
        spec_span_id = spec_span.span_id();
        spec_span.flow_out(spec_span_id);
        r = router.route(*snap, req.s, req.t, &fp);
      } catch (...) {
        WDM_TEL_GAUGE_ADD("rwa.parallel_batch.busy_workers", -1.0);
        lk.lock();
        if (!sh.first_exception) sh.first_exception = std::current_exception();
        sh.stop = true;
        --sh.slots[i].in_flight;
        sh.work_cv.notify_all();
        sh.result_cv.notify_all();
        return;
      }
      WDM_TEL_GAUGE_ADD("rwa.parallel_batch.busy_workers", -1.0);
      if (t_busy0 != 0) {
        const std::uint64_t busy = support::telemetry::now_ns() - t_busy0;
        WDM_TEL_HIST("rwa.parallel_batch.worker_busy_ns").record_ns(busy);
        if (c_busy != nullptr) c_busy->add(busy);
      }
      lk.lock();
      ++sh.st.speculations;
      --sl.in_flight;
      if (sl.done || sh.stop) {
        // The commit thread finalized this slot (or the run is unwinding)
        // while we were routing: the result was never judged.
        ++sh.st.spec_discarded;
      } else if (sh.spec_valid(fp, base)) {
        sl.res = std::move(r);
        sl.fp = std::move(fp);
        sl.base_epoch = base;
        sl.spec_span = spec_span_id;
        sl.has = true;
      } else {
        // Dead on arrival: a commit intersected the footprint mid-route.
        ++sh.st.conflicts;
        if (sl.attempts < sh.max_attempts && !sl.queued) {
          sh.retry_q.push_back(i);
          sl.queued = true;
          WDM_TEL_GAUGE_SET("rwa.parallel_batch.retry_queue_depth",
                            sh.retry_q.size());
          sh.work_cv.notify_one();
        }
      }
    }
    sh.result_cv.notify_all();
  }
}

}  // namespace

struct ParallelBatchEngine::SnapshotPool {
  std::vector<std::shared_ptr<net::WdmNetwork>> entries;
  // Identity of the base network the pooled copies were taken from; any
  // change (different object, topology growth, conversion-table swap)
  // flushes the pool — sync_residual_from only tracks usage and failure.
  std::uint64_t base_uid = 0;
  graph::NodeId base_nodes = -1;
  graph::EdgeId base_links = -1;
  int base_w = 0;
  std::uint64_t base_conv_sum = 0;

  static std::uint64_t conv_sum(const net::WdmNetwork& n) {
    std::uint64_t s = 0;
    for (graph::NodeId v = 0; v < n.num_nodes(); ++v) {
      s += n.conversion_revision(v);
    }
    return s;
  }

  std::shared_ptr<const net::WdmNetwork> publish(const net::WdmNetwork& live,
                                                 ParallelBatchStats& st) {
    const std::uint64_t cs = conv_sum(live);
    if (live.uid() != base_uid || live.num_nodes() != base_nodes ||
        live.num_links() != base_links || live.W() != base_w ||
        cs != base_conv_sum) {
      entries.clear();
      base_uid = live.uid();
      base_nodes = live.num_nodes();
      base_links = live.num_links();
      base_w = live.W();
      base_conv_sum = cs;
    }
    for (auto& sp : entries) {
      if (sp.use_count() == 1) {  // held only by the pool: free to refresh
        sp->sync_residual_from(live);
        ++st.snapshot_syncs;
        return sp;
      }
    }
    entries.push_back(std::make_shared<net::WdmNetwork>(live));
    ++st.snapshot_copies;
    return entries.back();
  }
};

ParallelBatchEngine::ParallelBatchEngine(ParallelBatchOptions opt)
    : opt_(opt), pool_(std::make_unique<SnapshotPool>()) {}

ParallelBatchEngine::~ParallelBatchEngine() = default;

int ParallelBatchEngine::resolved_threads() const {
  return opt_.threads > 0 ? opt_.threads : support::hardware_threads();
}

BatchOutcome ParallelBatchEngine::run(net::WdmNetwork& net,
                                      const Router& router,
                                      const std::vector<BatchRequest>& batch,
                                      BatchOrder order, support::Rng* rng) {
  stats_.requests += static_cast<long long>(batch.size());

  const int threads = resolved_threads();
  if (threads <= 1 || batch.size() <= 1) {
    // Serial short-circuit: hand the whole batch (including the ordering
    // permutation and its rng draw) to the shared serial path — bit-for-bit
    // trivially, with no snapshot pool, worker, or validator machinery.
    ++stats_.serial_runs;
    WDM_TEL_COUNT_N("rwa.parallel_batch.requests", batch.size());
    return provision_batch(net, router, batch, order, rng);
  }

  const std::vector<std::size_t> perm =
      batch_order_permutation(net, batch, order, rng);
  BatchOutcome out;
  out.routes.resize(batch.size());
  ++stats_.runs;

  Shared sh;
  sh.slots.resize(batch.size());
  sh.window = opt_.window > 0 ? static_cast<std::size_t>(opt_.window)
                              : static_cast<std::size_t>(4 * threads);
  sh.window = std::max<std::size_t>(sh.window, 1);
  sh.max_attempts = 1 + std::max(0, opt_.max_speculation_retries);
  sh.force_epoch = opt_.force_epoch_validation;
  sh.validator.begin_run(net);
  sh.snap = pool_->publish(net, sh.st);

  WorkerPool workers(sh);
  for (int w = 0; w < threads; ++w) {
    workers.add(std::thread(worker_loop, std::ref(sh), w, std::cref(router),
                            std::cref(batch), std::cref(perm)));
  }

  {
    std::unique_lock<std::mutex> lk(sh.mu);
    for (std::size_t k = 0; k < sh.slots.size(); ++k) {
      support::telemetry::SplitTimer tel_commit;
      sh.commit_idx = k;
      sh.work_cv.notify_all();  // the speculation window moved forward
      Slot& sl = sh.slots[k];
      // Commit span: root of the request's trace on the commit thread's
      // track; validation waits and re-route calls below nest under it, and
      // a consumed speculation draws a flow arrow into it.
      support::telemetry::TraceScope trace_scope({batch[perm[k]].trace, 0});
      WDM_TEL_SPAN(commit_span, "rwa.batch.commit_slot");
      RouteResult r;
      bool from_spec = false;
      std::uint64_t spec_base = 0;
      for (;;) {
        if (sh.first_exception) break;
        if (sl.has) {
          if (sh.spec_valid(sl.fp, sl.base_epoch)) {
            r = std::move(sl.res);
            sl.has = false;
            from_spec = true;
            spec_base = sl.base_epoch;
            break;
          }
          sl.has = false;
          ++sh.st.conflicts;
          if (sl.attempts < sh.max_attempts && !sl.queued) {
            sh.retry_q.push_back(k);
            sl.queued = true;
            WDM_TEL_GAUGE_SET("rwa.parallel_batch.retry_queue_depth",
                              sh.retry_q.size());
            sh.work_cv.notify_one();
          }
          continue;
        }
        if (sl.in_flight > 0) {
          // Commit-thread stall: the serial order needs this slot and a
          // speculation for it is still in flight.
          const std::uint64_t t_w0 =
              support::telemetry::enabled() ? support::telemetry::now_ns() : 0;
          sh.result_cv.wait(lk);  // a speculation is landing soon
          if (t_w0 != 0) {
            WDM_TEL_HIST("rwa.parallel_batch.commit_wait_ns")
                .record_ns(support::telemetry::now_ns() - t_w0);
          }
          continue;
        }
        // No speculation in flight: route on the commit thread against the
        // live network (the serial state by induction). Steal a pending
        // retry — routing it here beats waiting for a worker to reach it.
        if (sl.queued) {
          auto it = std::find(sh.retry_q.begin(), sh.retry_q.end(), k);
          WDM_DCHECK(it != sh.retry_q.end());
          sh.retry_q.erase(it);
          sl.queued = false;
          WDM_TEL_GAUGE_SET("rwa.parallel_batch.retry_queue_depth",
                            sh.retry_q.size());
        }
        if (sl.attempts >= sh.max_attempts) ++sh.st.serial_fallbacks;
        ++sh.st.commit_reroutes;
        if (sh.cursor <= k) sh.cursor = k + 1;  // nobody else claims k
        sl.done = true;  // landed speculations for k are now discards
        const BatchRequest& req = batch[perm[k]];
        lk.unlock();
        RouteResult mine;
        try {
          mine = router.route(net, req.s, req.t);
        } catch (...) {
          lk.lock();
          if (!sh.first_exception) sh.first_exception = std::current_exception();
          break;
        }
        lk.lock();
        r = std::move(mine);
        break;
      }
      if (sh.first_exception) break;
      sl.done = true;

      if (from_spec) {
        ++sh.st.spec_commits;
        if (spec_base < sh.cur_epoch) ++sh.st.footprint_hits;
        commit_span.flow_in(sl.spec_span);
      }
      // The serial accept/drop decision, evaluated against the live network.
      // The validator needs the pre-reservation state of the route's links,
      // so capture before commit_route and keep only if it reserved.
      const bool capture = !sh.force_epoch && r.found;
      if (capture) sh.validator.capture_pre(net, r.route);
      if (detail::commit_route(net, r, perm[k], out)) {
        ++sh.cur_epoch;
        ++sh.st.epochs;
        if (capture) sh.validator.commit(net, sh.cur_epoch);
        // Proactively invalidate only the published speculations this write
        // set intersects; everything else stays valid across the commit.
        const std::size_t limit = sh.claim_limit();
        for (std::size_t j = k + 1; j < limit; ++j) {
          Slot& s2 = sh.slots[j];
          if (!s2.has || sh.spec_valid(s2.fp, s2.base_epoch)) continue;
          s2.has = false;
          ++sh.st.conflicts;
          if (s2.attempts < sh.max_attempts && !s2.queued) {
            sh.retry_q.push_back(j);
            s2.queued = true;
          }
        }
        WDM_TEL_GAUGE_SET("rwa.parallel_batch.retry_queue_depth",
                          sh.retry_q.size());
        sh.snap = pool_->publish(net, sh.st);
        sh.work_cv.notify_all();
      } else if (capture) {
        sh.validator.discard_pre();
      }
      // Finalize latency for this slot: wait-for-speculation + validation +
      // commit (the batch-mode provisioning critical path).
      tel_commit.total(WDM_TEL_HIST("rwa.parallel_batch.commit_slot_ns"));
    }
    sh.stop = true;
  }
  sh.work_cv.notify_all();
  workers.stop_and_join();

  // Merge this run's counters (single-threaded again: workers are gone).
  stats_.speculations += sh.st.speculations;
  stats_.spec_commits += sh.st.spec_commits;
  stats_.footprint_hits += sh.st.footprint_hits;
  stats_.conflicts += sh.st.conflicts;
  stats_.spec_discarded += sh.st.spec_discarded;
  stats_.retries += sh.st.retries;
  stats_.commit_reroutes += sh.st.commit_reroutes;
  stats_.serial_fallbacks += sh.st.serial_fallbacks;
  stats_.epochs += sh.st.epochs;
  stats_.snapshot_syncs += sh.st.snapshot_syncs;
  stats_.snapshot_copies += sh.st.snapshot_copies;

  // Speculation wins / invalidations / re-routes for this run. These depend
  // on scheduling (thread count, timing) and are intentionally outside the
  // deterministic `sim.*` counter namespace.
  if (support::telemetry::enabled()) {
    // The run is over: the live gauges must read empty, not whatever depth
    // the last mutation happened to leave behind.
    WDM_TEL_GAUGE_SET("rwa.parallel_batch.retry_queue_depth", 0.0);
    WDM_TEL_GAUGE_SET("rwa.parallel_batch.busy_workers", 0.0);
    WDM_TEL_COUNT_N("rwa.parallel_batch.requests", batch.size());
    WDM_TEL_COUNT_N("rwa.parallel_batch.speculations", sh.st.speculations);
    WDM_TEL_COUNT_N("rwa.parallel_batch.spec_commits", sh.st.spec_commits);
    WDM_TEL_COUNT_N("rwa.parallel_batch.footprint_hits",
                    sh.st.footprint_hits);
    WDM_TEL_COUNT_N("rwa.parallel_batch.footprint_misses", sh.st.conflicts);
    WDM_TEL_COUNT_N("rwa.parallel_batch.conflicts", sh.st.conflicts);
    WDM_TEL_COUNT_N("rwa.parallel_batch.spec_discarded",
                    sh.st.spec_discarded);
    WDM_TEL_COUNT_N("rwa.parallel_batch.retries", sh.st.retries);
    WDM_TEL_COUNT_N("rwa.parallel_batch.commit_reroutes",
                    sh.st.commit_reroutes);
    WDM_TEL_COUNT_N("rwa.parallel_batch.serial_fallbacks",
                    sh.st.serial_fallbacks);
    WDM_TEL_COUNT_N("rwa.parallel_batch.epochs", sh.st.epochs);
    WDM_TEL_COUNT_N("rwa.parallel_batch.snapshot_syncs", sh.st.snapshot_syncs);
    WDM_TEL_COUNT_N("rwa.parallel_batch.snapshot_copies",
                    sh.st.snapshot_copies);
  }

  if (sh.first_exception) std::rethrow_exception(sh.first_exception);

  out.final_network_load = net.network_load();
  return out;
}

}  // namespace wdm::rwa
