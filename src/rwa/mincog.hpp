// §4.1 — Find_Two_Paths_MinCog: two edge-disjoint semilightpaths minimizing
// the network load ρ, via a geometric search over the load threshold ϑ.
//
// The search constructs G_c(ϑ) and runs Suurballe; on failure it raises ϑ
// and retries. The paper's pseudo-code increments ϑ by Δ/2^j with j counting
// *down* from j0 = ⌈log2(1/Δ)⌉ — i.e. the increment doubles on every failed
// probe, so the accepted ϑ overshoots the minimum feasible threshold by at
// most the last increment, giving the <3 performance ratio of Theorem 3.
// (Read literally, the pseudo-code's loop guard `j < 0` and the +Δ/2^j
// updates do not terminate against ϑ_max; we implement the doubling-
// increment intent, clamp probes at ϑ_max, and finish with the mandatory
// ϑ_max probe that decides whether the request must be dropped.)
#pragma once

#include "graph/suurballe.hpp"
#include "rwa/aux_graph.hpp"
#include "rwa/route_scratch.hpp"
#include "rwa/router.hpp"

namespace wdm::rwa {

/// Threshold-search strategies (ablation; the paper uses kDoubling).
enum class ThetaSearch {
  kDoubling,    // the paper's Δ/2^j doubling increments
  kLinearScan,  // probe each distinct link-load boundary in order (exact,
                // up to m probes)
  kBisection,   // bisect [ϑ_min, ϑ_max] to a fixed tolerance
};

struct MinCogOptions {
  /// Exponential base `a` of the G_c link weights.
  double load_base = 2.0;
  ThetaSearch search = ThetaSearch::kDoubling;
  /// Bisection stops when the bracket is narrower than this.
  double bisection_tolerance = 1e-3;
  /// Build every G_c(ϑ) probe in the builder's stable arena
  /// (AuxGraphOptions::stable_arena). The routers set this when probing
  /// through a RouteScratch builder: the arena and a compact build cannot
  /// coexist in one builder, so mixing modes would rebuild the universe
  /// structure every request and defeat the warm Suurballe trees.
  bool stable_arena = false;
};

struct MinCogResult {
  bool found = false;
  /// Accepted threshold (the approximate minimum network load).
  double theta = 0.0;
  /// Number of G_c constructions (probes) — Theorem 3 bounds this by
  /// O(log 1/Δ).
  int iterations = 0;
  /// Every ϑ value probed, in order (iterations entries) — the load-band
  /// stamp ParallelBatchEngine footprints validate against.
  std::vector<double> probes;
  /// The last ϑ probe that failed before acceptance (NaN when the very first
  /// probe succeeded). Theorem 3's ratio argument bounds
  /// theta / last_infeasible_theta by 3.
  double last_infeasible_theta = std::numeric_limits<double>::quiet_NaN();
  /// The two edge-disjoint paths in the final G_c.
  graph::DisjointPair aux_pair;
  /// The final auxiliary graph (kept for projection).
  AuxGraph aux;
};

/// The threshold search itself. Exposed separately from the Router wrapper
/// so bench E5 can compare the accepted ϑ against the exact minimum.
/// Every probe builds a fresh G_c(ϑ); `builder` (optional) supplies the
/// warm AuxGraphBuilder the probes share — since the network is untouched
/// between probes, every transit-arc scan after the first is a cache hit.
/// With nullptr a search-local builder is used, still warming across probes.
MinCogResult find_two_paths_mincog(const net::WdmNetwork& net, net::NodeId s,
                                   net::NodeId t, const MinCogOptions& opt = {},
                                   AuxGraphBuilder* builder = nullptr);

/// Exact minimum achievable bottleneck load L*: the smallest value such that
/// two edge-disjoint routes exist using only links with load <= L*. Under
/// the paper's strict filter, G_c(ϑ) is feasible exactly for ϑ > L*, so L*
/// is the infimum MinCog's accepted ϑ is measured against. Computed by
/// probing the distinct link-load values in increasing order (feasibility is
/// monotone). Returns false when no pair exists even with every link.
bool exact_min_threshold(const net::WdmNetwork& net, net::NodeId s,
                         net::NodeId t, double* theta_out);

/// §4.1 as a routing policy: accept the MinCog threshold, project the two
/// G_c paths, and run the optimal-semilightpath solver in each induced
/// subgraph.
class MinLoadRouter final : public Router {
 public:
  /// `policy`: kSrlg reruns the pair search on the accepted G_c(ϑ) with
  /// SRLG conflict sets (requests SRLG-routable only above the accepted ϑ
  /// are blocked); kPartial delegates to route_partial.
  explicit MinLoadRouter(MinCogOptions opt = {},
                         net::ProtectPolicy policy = net::ProtectPolicy::full())
      : opt_(opt), policy_(policy) {}

  RouteResult route(const net::WdmNetwork& net, net::NodeId s,
                    net::NodeId t) const override {
    return route(net, s, t, nullptr);
  }

  /// Load-band footprint (ϑ stamps + probe ladder + refinement masks), as
  /// LoadCostRouter. SRLG / partial / kLinearScan paths stay opaque.
  RouteResult route(const net::WdmNetwork& net, net::NodeId s, net::NodeId t,
                    RouteFootprint* fp) const override;

  std::string name() const override { return "min-load(§4.1)"; }

 private:
  MinCogOptions opt_;
  net::ProtectPolicy policy_;
  /// Probes share the scratch builder's stable arena; the copied-out final
  /// G_c keeps the projection masks in the scratch's recycled buffers.
  mutable RouteScratchPool scratch_;
};

}  // namespace wdm::rwa
