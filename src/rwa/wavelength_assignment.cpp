#include "rwa/wavelength_assignment.hpp"

#include <algorithm>
#include <limits>

#include "support/check.hpp"

namespace wdm::rwa {

const char* wa_policy_name(WaPolicy policy) {
  switch (policy) {
    case WaPolicy::kFirstFit: return "first-fit";
    case WaPolicy::kLastFit: return "last-fit";
    case WaPolicy::kRandom: return "random";
    case WaPolicy::kMostUsed: return "most-used";
    case WaPolicy::kLeastUsed: return "least-used";
  }
  return "?";
}

namespace {

/// Network-wide usage count per wavelength (for most/least-used).
std::vector<int> global_usage(const net::WdmNetwork& net) {
  std::vector<int> count(static_cast<std::size_t>(net.W()), 0);
  for (graph::EdgeId e = 0; e < net.num_links(); ++e) {
    const net::WavelengthSet used =
        net.installed(e).minus(net.available(e));
    used.for_each([&](net::Wavelength l) {
      ++count[static_cast<std::size_t>(l)];
    });
  }
  return count;
}

net::Wavelength pick(const net::WavelengthSet& candidates, WaPolicy policy,
                     const std::vector<int>& usage, support::Rng* rng) {
  if (candidates.empty()) return net::kInvalidWavelength;
  switch (policy) {
    case WaPolicy::kFirstFit:
      return candidates.lowest();
    case WaPolicy::kLastFit: {
      net::Wavelength best = net::kInvalidWavelength;
      candidates.for_each([&](net::Wavelength l) { best = l; });
      return best;
    }
    case WaPolicy::kRandom: {
      WDM_CHECK_MSG(rng != nullptr, "random policy needs an RNG");
      const auto v = candidates.to_vector();
      return v[rng->index(v.size())];
    }
    case WaPolicy::kMostUsed: {
      net::Wavelength best = net::kInvalidWavelength;
      int best_usage = -1;
      candidates.for_each([&](net::Wavelength l) {
        if (usage[static_cast<std::size_t>(l)] > best_usage) {
          best_usage = usage[static_cast<std::size_t>(l)];
          best = l;
        }
      });
      return best;
    }
    case WaPolicy::kLeastUsed: {
      net::Wavelength best = net::kInvalidWavelength;
      int best_usage = std::numeric_limits<int>::max();
      candidates.for_each([&](net::Wavelength l) {
        if (usage[static_cast<std::size_t>(l)] < best_usage) {
          best_usage = usage[static_cast<std::size_t>(l)];
          best = l;
        }
      });
      return best;
    }
  }
  return net::kInvalidWavelength;
}

}  // namespace

net::Semilightpath assign_wavelengths(const net::WdmNetwork& net,
                                      const std::vector<graph::EdgeId>& links,
                                      WaPolicy policy, support::Rng* rng) {
  net::Semilightpath slp;
  assign_wavelengths_into(net, links, policy, rng, &slp);
  return slp;
}

bool assign_wavelengths_into(const net::WdmNetwork& net,
                             const std::vector<graph::EdgeId>& links,
                             WaPolicy policy, support::Rng* rng,
                             net::Semilightpath* out) {
  net::Semilightpath& slp = *out;
  slp.hops.clear();
  slp.found = false;
  if (links.empty()) return false;

  std::vector<int> usage;
  if (policy == WaPolicy::kMostUsed || policy == WaPolicy::kLeastUsed) {
    usage = global_usage(net);
  }

  // Segment-wise assignment: at each segment start, the candidate set is
  // the intersection of Λ_avail over the *maximal continuity run* of links
  // (the classic scheme — without conversion this reduces to picking from
  // the whole-path intersection, the textbook first-fit). The policy then
  // chooses within that set. Continuity is kept as long as the current
  // wavelength survives; a conversion (where allowed) starts a new segment
  // restricted to convertible targets.
  net::Wavelength current = net::kInvalidWavelength;
  std::size_t i = 0;
  while (i < links.size()) {
    if (current != net::kInvalidWavelength &&
        net.available(links[i]).contains(current)) {
      slp.hops.push_back(net::Hop{links[i], current});
      ++i;
      continue;
    }
    // Segment start: base candidates on this link (restricted to
    // convertible targets when this is a mid-path conversion).
    net::WavelengthSet base = net.available(links[i]);
    if (current != net::kInvalidWavelength) {
      const net::NodeId v = net.graph().tail(links[i]);
      const auto& table = net.conversion(v);
      net::WavelengthSet convertible;
      base.for_each([&](net::Wavelength l) {
        if (table.allowed(current, l)) convertible.insert(l);
      });
      base = convertible;
    }
    if (base.empty()) {
      slp.hops.clear();
      slp.found = false;
      return false;
    }
    // Extend the segment as far as the intersection stays nonempty.
    net::WavelengthSet run = base;
    std::size_t j = i;
    while (j + 1 < links.size()) {
      const net::WavelengthSet next = run.intersect(net.available(links[j + 1]));
      if (next.empty()) break;
      run = next;
      ++j;
    }
    const net::Wavelength chosen = pick(run, policy, usage, rng);
    WDM_DCHECK(chosen != net::kInvalidWavelength);
    for (std::size_t k = i; k <= j; ++k) {
      slp.hops.push_back(net::Hop{links[k], chosen});
    }
    current = chosen;
    i = j + 1;
  }
  slp.found = true;
  return true;
}

}  // namespace wdm::rwa
