#include "rwa/route_scratch.hpp"

namespace wdm::rwa {

RouteScratchPool::Lease::~Lease() {
  if (scratch_ != nullptr) pool_->put(std::move(scratch_));
}

RouteScratchPool::Lease RouteScratchPool::lease() {
  std::unique_ptr<RouteScratch> scratch;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (!idle_.empty()) {
      scratch = std::move(idle_.back());
      idle_.pop_back();
    }
  }
  if (scratch == nullptr) scratch = std::make_unique<RouteScratch>();
  return Lease(this, std::move(scratch));
}

RouteScratchPool::Lease RouteScratchPool::lease(const net::WdmNetwork& net) {
  std::unique_ptr<RouteScratch> scratch;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    std::size_t pick = idle_.size();
    for (std::size_t i = idle_.size(); i-- > 0;) {
      if (idle_[i]->bound_uid() == net.uid()) {
        pick = i;
        break;
      }
      if (pick == idle_.size() && idle_[i]->bound_uid() == 0) pick = i;
    }
    if (pick == idle_.size() && !idle_.empty()) pick = idle_.size() - 1;
    if (pick < idle_.size()) {
      scratch = std::move(idle_[pick]);
      idle_.erase(idle_.begin() + static_cast<std::ptrdiff_t>(pick));
    }
  }
  if (scratch == nullptr) scratch = std::make_unique<RouteScratch>();
  return Lease(this, std::move(scratch));
}

std::size_t RouteScratchPool::idle_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return idle_.size();
}

void RouteScratchPool::put(std::unique_ptr<RouteScratch> scratch) {
  const std::lock_guard<std::mutex> lock(mu_);
  idle_.push_back(std::move(scratch));
}

}  // namespace wdm::rwa
