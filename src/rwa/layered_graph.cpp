#include "rwa/layered_graph.hpp"

#include "graph/dijkstra.hpp"
#include "support/check.hpp"

namespace wdm::rwa {

namespace {

bool link_on(std::span<const std::uint8_t> mask, EdgeId e) {
  return mask.empty() || mask[static_cast<std::size_t>(e)] != 0;
}

}  // namespace

LayeredGraph LayeredGraph::build(const net::WdmNetwork& net, NodeId s,
                                 NodeId t,
                                 std::span<const std::uint8_t> link_enabled) {
  return build_with(net, s, t, Overrides{}, link_enabled);
}

LayeredGraph LayeredGraph::build_with(
    const net::WdmNetwork& net, NodeId s, NodeId t,
    const Overrides& overrides, std::span<const std::uint8_t> link_enabled) {
  const auto& pg = net.graph();
  WDM_CHECK(pg.valid_node(s) && pg.valid_node(t));
  WDM_CHECK(link_enabled.empty() ||
            link_enabled.size() == static_cast<std::size_t>(pg.num_edges()));
  const int W = net.W();
  const NodeId n = pg.num_nodes();

  // Active-node compaction: with a confining mask (the §3.3.2 refinement
  // runs inside an induced subgraph of a handful of links), only nodes
  // incident to an enabled link — plus the query endpoints — can appear on
  // any S->T path. Skipping the rest drops the n·W² conversion-arc term to
  // (active)·W², which is what makes per-request refinement affordable at
  // continental scale. Unmasked builds keep the historical dense layout
  // (every node is active anyway), so ids — and with them Dijkstra
  // tie-breaking — stay bit-for-bit.
  const bool compacted = !link_enabled.empty();
  std::vector<NodeId> layer_of;  // physical node -> layer slot
  NodeId n_active = n;
  if (compacted) {
    layer_of.assign(static_cast<std::size_t>(n), graph::kInvalidNode);
    n_active = 0;
    auto touch = [&](NodeId v) {
      if (layer_of[static_cast<std::size_t>(v)] == graph::kInvalidNode) {
        layer_of[static_cast<std::size_t>(v)] = n_active++;
      }
    };
    touch(s);
    touch(t);
    for (EdgeId e = 0; e < pg.num_edges(); ++e) {
      if (!link_on(link_enabled, e)) continue;
      touch(pg.tail(e));
      touch(pg.head(e));
    }
  }
  const auto slot = [&](NodeId v) {
    return compacted ? layer_of[static_cast<std::size_t>(v)] : v;
  };

  LayeredGraph lg;
  // Layout: in-copy of (v, λ) = 2*(slot(v)*W + λ), out-copy = +1.
  lg.g = graph::Digraph(2 * n_active * W + 2);
  lg.source_hub = 2 * n_active * W;
  lg.sink_hub = 2 * n_active * W + 1;
  auto in_copy = [&](NodeId v, net::Wavelength l) {
    return 2 * (slot(v) * W + l);
  };
  auto out_copy = [&](NodeId v, net::Wavelength l) {
    return 2 * (slot(v) * W + l) + 1;
  };
  const net::Hop no_hop{};
  auto add = [&](NodeId a, NodeId b, double weight, net::Hop hop) {
    lg.g.add_edge(a, b);
    lg.w.push_back(weight);
    lg.hop_of_arc.push_back(hop);
  };

  // Conversion arcs (including the free λ -> λ pass-through).
  for (NodeId v = 0; v < n; ++v) {
    if (compacted && layer_of[static_cast<std::size_t>(v)] == graph::kInvalidNode) {
      continue;
    }
    const auto& table = net.conversion(v);
    for (net::Wavelength a = 0; a < W; ++a) {
      for (net::Wavelength b = 0; b < W; ++b) {
        if (table.allowed(a, b)) {
          add(in_copy(v, a), out_copy(v, b), table.cost(a, b), no_hop);
        }
      }
    }
  }
  // Traversal arcs over the (possibly overridden) residual view.
  for (EdgeId e = 0; e < pg.num_edges(); ++e) {
    if (!link_on(link_enabled, e)) continue;
    const NodeId u = pg.tail(e);
    const NodeId v = pg.head(e);
    const net::WavelengthSet usable =
        overrides.available ? overrides.available(e) : net.available(e);
    usable.for_each([&](net::Wavelength l) {
      const double w_el =
          overrides.weight ? overrides.weight(e, l) : net.weight(e, l);
      add(out_copy(u, l), in_copy(v, l), w_el, net::Hop{e, l});
    });
  }
  // Hubs.
  for (net::Wavelength l = 0; l < W; ++l) {
    add(lg.source_hub, out_copy(s, l), 0.0, no_hop);
    add(in_copy(t, l), lg.sink_hub, 0.0, no_hop);
  }
  return lg;
}

net::Semilightpath LayeredGraph::to_semilightpath(const graph::Path& p) const {
  net::Semilightpath slp;
  if (!p.found) return slp;
  slp.found = true;
  for (EdgeId arc : p.edges) {
    const net::Hop& h = hop_of_arc[static_cast<std::size_t>(arc)];
    if (h.edge != graph::kInvalidEdge) slp.hops.push_back(h);
  }
  return slp;
}

net::Semilightpath optimal_semilightpath(
    const net::WdmNetwork& net, NodeId s, NodeId t,
    std::span<const std::uint8_t> link_enabled) {
  WDM_CHECK_MSG(s != t, "semilightpath endpoints must differ");
  const LayeredGraph lg = LayeredGraph::build(net, s, t, link_enabled);
  const graph::Path p =
      graph::shortest_path(lg.g, lg.w, lg.source_hub, lg.sink_hub);
  return lg.to_semilightpath(p);
}

net::Semilightpath optimal_semilightpath_with(
    const net::WdmNetwork& net, NodeId s, NodeId t,
    const LayeredGraph::Overrides& overrides,
    std::span<const std::uint8_t> link_enabled) {
  WDM_CHECK_MSG(s != t, "semilightpath endpoints must differ");
  const LayeredGraph lg =
      LayeredGraph::build_with(net, s, t, overrides, link_enabled);
  const graph::Path p =
      graph::shortest_path(lg.g, lg.w, lg.source_hub, lg.sink_hub);
  return lg.to_semilightpath(p);
}

double optimal_semilightpath_cost(
    const net::WdmNetwork& net, NodeId s, NodeId t,
    std::span<const std::uint8_t> link_enabled) {
  const net::Semilightpath p = optimal_semilightpath(net, s, t, link_enabled);
  return p.found ? p.cost(net) : graph::kInf;
}

}  // namespace wdm::rwa
