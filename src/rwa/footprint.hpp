// Per-speculation read footprints and the commit-side validator that replaces
// whole-network epoch validation in ParallelBatchEngine (ROADMAP item 1).
//
// The problem: a speculation computed against a snapshot at epoch b is safe to
// commit at epoch c > b iff re-running the router against the *live* network
// would reproduce the speculated RouteResult bit-for-bit. Epoch validation
// answers "yes" only when b == c, which serializes accept-heavy batches. The
// footprint answers "yes" whenever none of the intervening commits *semantically
// changed* anything the router read.
//
// A naive per-link read set does not work here: every auxiliary-graph router
// reads *all* links (G', G_c and G_rc are built over the whole residual
// network), so a literal read set degenerates back to epoch validation. The
// footprint is therefore expressed in the router's *derived* quantities — the
// values the auxiliary graphs are actually built from — and the validator
// diffs those quantities across each committed route's write set:
//
//   * cost channel (G'-family routers: ApproxDisjointRouter,
//     NodeDisjointRouter). G' depends on each link only through
//     (a) availability *emptiness* (usable-set membership, which also fixes
//     the edge-node id layout), (b) the bitwise mean available weight
//     (mean_available_weight), and (c) the (exists, mean) value of every
//     transit pair touching the link (mean_conversion_cost). A commit whose
//     reservations leave all three unchanged on every written link — the
//     common case under uniform per-wavelength costs — is invisible to G'.
//
//   * load channel (MinCog-family routers: LoadCostRouter, MinLoadRouter).
//     The ϑ-search ladder is derived from ϑ_min/ϑ_max = min/max over links of
//     (U(e)+1)/N(e); probe feasibility and the accepted G_c(ϑ)/G_rc(ϑ) depend
//     on each link only through its load band relative to the probed ϑ values
//     and, for members (load < ϑ_accepted), the exact residual state. Under
//     commit-only usage growth (loads are monotone within a run) the validator
//     can prove the ladder, every probe answer, and the accepted graph
//     unchanged from the recorded stamps — the "load-band stamp" of the issue.
//
//   * exact links. The projection/refinement stage (optimal_semilightpath over
//     the induced masks) reads the full residual state of exactly the masked
//     links; any write to one of them invalidates.
//
//   * opaque. Routers that do not record a footprint (baselines, SRLG and
//     partial-protection paths, ablation ϑ-searches whose probe grid depends
//     on every link load) validate exactly like the old epoch scheme: valid
//     iff nothing committed since the snapshot.
//
// Soundness argument (why "footprint passes" implies bit-identical re-route)
// is spelled out rule-by-rule in DESIGN.md §5; the differential unit + fuzz
// suites enforce it against both serial provisioning and epoch validation.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "graph/digraph.hpp"
#include "wdm/network.hpp"
#include "wdm/semilightpath.hpp"

namespace wdm::rwa {

/// The read set of one Router::route call, recorded by the router itself.
/// Default-constructed (or mark_opaque()'d) footprints demand epoch-exact
/// validation, so routers that never heard of footprints stay correct.
struct RouteFootprint {
  /// No structured footprint recorded: valid only if zero commits landed
  /// since the speculation's snapshot (the old epoch rule).
  bool opaque = true;

  /// The route consulted the G' cost channel of every link (mean available
  /// weights, transit-pair means, usable-set membership).
  bool cost_semantics = false;

  /// The route consulted the global load structure: ϑ_min/ϑ_max and the
  /// recorded probe ladder.
  bool load_semantics = false;

  double theta_min = std::numeric_limits<double>::quiet_NaN();
  double theta_max = std::numeric_limits<double>::quiet_NaN();
  /// Every ϑ value probed by the MinCog search, in probe order.
  std::vector<double> theta_probes;
  /// The accepted ϑ (NaN when the search dropped the request). Links with
  /// load < theta_accepted are members of the accepted G_c/G_rc and any
  /// write to one invalidates.
  double theta_accepted = std::numeric_limits<double>::quiet_NaN();

  /// Links whose exact residual state was read (the induced refinement
  /// masks); any write to one invalidates.
  std::vector<graph::EdgeId> exact_links;

  /// Starts recording a structured (non-opaque) footprint.
  void begin() {
    opaque = false;
    cost_semantics = false;
    load_semantics = false;
    theta_min = std::numeric_limits<double>::quiet_NaN();
    theta_max = std::numeric_limits<double>::quiet_NaN();
    theta_probes.clear();
    theta_accepted = std::numeric_limits<double>::quiet_NaN();
    exact_links.clear();
  }

  /// Collapses to epoch-exact validation (unsupported router paths).
  void mark_opaque() {
    opaque = true;
    cost_semantics = false;
    load_semantics = false;
    theta_probes.clear();
    exact_links.clear();
  }

  void add_exact_link(graph::EdgeId e) { exact_links.push_back(e); }

  /// Appends every link enabled in an induced mask (mask[e] != 0).
  void add_exact_mask(std::span<const std::uint8_t> mask) {
    for (std::size_t e = 0; e < mask.size(); ++e) {
      if (mask[e] != 0) exact_links.push_back(static_cast<graph::EdgeId>(e));
    }
  }
};

/// One written link of one committed route, with its load position before and
/// after the reservation. next_load = (U(e)+1)/N(e), the quantity ϑ_min/ϑ_max
/// range over.
struct LinkWriteDelta {
  graph::EdgeId link = graph::kInvalidEdge;
  double load_before = 0.0;
  double load_after = 0.0;
  double next_load_before = 0.0;
  double next_load_after = 0.0;
};

/// The write set of one committed route, in commit (epoch) order.
struct CommitDelta {
  std::uint64_t epoch = 0;  // epoch value *after* this commit landed
  std::vector<LinkWriteDelta> links;
};

/// Commit-side bookkeeping: captures each committed route's write set, diffs
/// the derived quantities the footprints reference, and answers validity
/// queries. Owned by the ParallelBatchEngine commit thread; concurrent
/// access (workers validating their own landings) must be externally
/// synchronized by the engine's mutex — the validator itself takes no locks.
class FootprintValidator {
 public:
  /// Resets all history and sizes per-link state for `net`. Epoch restarts
  /// at 0 (== "no commits yet").
  void begin_run(const net::WdmNetwork& net);

  /// Captures the pre-reservation state of every distinct link of `r`
  /// (primary + backup hops). Call immediately before ProtectedRoute::
  /// reserve_in on an accepted route; pair with either commit() or
  /// discard_pre().
  void capture_pre(const net::WdmNetwork& net, const net::ProtectedRoute& r);

  /// Recaptures the written links post-reservation, diffs the cost channel,
  /// and records the write deltas under `epoch` (strictly increasing).
  void commit(const net::WdmNetwork& net, std::uint64_t epoch);

  /// Drops a capture_pre whose route was not reserved after all.
  void discard_pre();

  /// True iff a speculation with footprint `fp`, computed against the
  /// snapshot at `base_epoch`, is still bit-for-bit reproducible against the
  /// live network (i.e. after every commit with epoch > base_epoch).
  bool valid(const RouteFootprint& fp, std::uint64_t base_epoch) const;

  std::uint64_t latest_epoch() const { return latest_epoch_; }

 private:
  struct PairPre {
    bool has = false;
    double mean = 0.0;
  };
  struct LinkPre {
    graph::EdgeId link = graph::kInvalidEdge;
    bool empty = false;
    double mean_weight = 0.0;
    double load = 0.0;
    double next_load = 0.0;
    // (exists, mean) of every transit pair the link participates in:
    // (link -> o) for o out of head(link), then (i -> link) for i into
    // tail(link), in adjacency order.
    std::vector<PairPre> pairs;
  };

  void capture_link(const net::WdmNetwork& net, graph::EdgeId e,
                    LinkPre* into) const;

  // Scratch for the in-flight capture (commit thread only).
  std::vector<LinkPre> pre_;
  std::vector<graph::EdgeId> scratch_links_;

  // Committed history, epochs strictly increasing.
  std::vector<CommitDelta> deltas_;
  std::vector<std::uint64_t> last_write_epoch_;  // per link, 0 = never
  std::uint64_t last_cost_change_epoch_ = 0;
  std::uint64_t latest_epoch_ = 0;
};

}  // namespace wdm::rwa
