// Shared-backup path protection (SBPP) — the restoration variant of
// Kodialam–Lakshman (the paper's [11]), implemented over this library's
// model as an extension.
//
// Dedicated (1+1-style) protection reserves a wavelength on every backup
// link per connection. Under the single-failure assumption, backups whose
// *primaries* are edge-disjoint can never be activated simultaneously, so
// they may share a backup wavelength channel. SBPP books backup capacity in
// a sharing ledger instead of per-connection:
//
//   * a backup channel (link e, λ) carries a set of sharer connections with
//     pairwise edge-disjoint primaries;
//   * provisioning prices an existing compatible channel at a small ε
//     (strongly preferring reuse) and a fresh channel at its real cost;
//   * on a failure, each affected connection activates its backup; the
//     disjointness invariant guarantees no two affected connections contend
//     for the same channel.
//
// bench_shared_backup (E14) measures the backup-capacity savings vs the
// paper's dedicated scheme at equal service.
#pragma once

#include <map>
#include <vector>

#include "rwa/router.hpp"

namespace wdm::rwa {

class SharedBackupPool {
 public:
  struct Options {
    /// Marginal price of reusing an existing compatible channel, as a
    /// fraction of the channel's real weight.
    double sharing_price_factor = 0.01;
  };

  /// The pool mutates `net` (reserving/releasing channels); the network
  /// must outlive the pool.
  explicit SharedBackupPool(net::WdmNetwork* network)
      : SharedBackupPool(network, Options()) {}
  SharedBackupPool(net::WdmNetwork* network, Options options);

  struct Provisioned {
    bool found = false;
    long id = -1;
    net::Semilightpath primary;
    net::Semilightpath backup;
    int shared_channels = 0;     // backup hops riding existing channels
    int dedicated_channels = 0;  // backup hops that opened new channels
  };

  /// Routes (s, t): dedicated primary + shared backup. On success both are
  /// booked (primary reserved in the network, backup in the ledger).
  Provisioned provision(net::NodeId s, net::NodeId t);

  /// Tears a connection down, releasing channels whose last sharer left.
  void release(long id);

  /// Simulates a cut of `link`: every connection whose primary uses it
  /// switches onto its backup (backup becomes the new dedicated primary and
  /// leaves the sharing ledger). Returns the ids switched. Throws if the
  /// sharing invariant would make two affected connections contend — which
  /// the compatibility rule makes impossible (asserted in tests).
  std::vector<long> fail_link(graph::EdgeId link);

  int num_connections() const { return static_cast<int>(conns_.size()); }
  /// Wavelength-links held for backups (channels, not per-connection).
  long long backup_channels() const {
    return static_cast<long long>(channels_.size());
  }
  /// Wavelength-links that dedicated protection would hold for the same
  /// connections (Σ backup path lengths).
  long long dedicated_equivalent_channels() const;

  /// Ledger invariant: all sharers of every channel have pairwise
  /// edge-disjoint primaries.
  bool sharers_pairwise_disjoint() const;

 private:
  struct Channel {
    std::vector<long> sharers;
  };
  struct Connection {
    net::Semilightpath primary;
    net::Semilightpath backup;
  };
  using ChannelKey = std::pair<graph::EdgeId, net::Wavelength>;

  bool compatible(const Channel& channel,
                  const std::vector<graph::EdgeId>& primary_edges) const;

  net::WdmNetwork* net_;
  Options opt_;
  std::map<ChannelKey, Channel> channels_;
  std::map<long, Connection> conns_;
  long next_id_ = 0;
};

}  // namespace wdm::rwa
