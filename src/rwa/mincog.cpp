#include "rwa/mincog.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "rwa/layered_graph.hpp"
#include "rwa/srlg.hpp"
#include "support/check.hpp"
#include "support/telemetry.hpp"

namespace wdm::rwa {

namespace {

/// One probe: build G_c(ϑ) through the shared warm builder, run Suurballe.
/// Feasible iff a pair exists. The network is untouched between probes, so
/// only the first probe of a search pays the transit-arc scans.
bool probe(const net::WdmNetwork& net, net::NodeId s, net::NodeId t,
           double theta, const MinCogOptions& opt, AuxGraphBuilder& builder,
           MinCogResult* into, bool inclusive = false) {
  WDM_TEL_COUNT("rwa.mincog.probes");
  support::telemetry::SplitTimer tel;
  AuxGraphOptions aopt;
  aopt.weighting = AuxWeighting::kLoadExponential;
  aopt.theta = theta;
  aopt.load_base = opt.load_base;
  aopt.include_at_threshold = inclusive;
  aopt.stable_arena = opt.stable_arena;
  const AuxGraph& aux = builder.build(net, s, t, aopt);
  tel.split(WDM_TEL_HIST("rwa.mincog.aux_build_ns"),
            WDM_TEL_NAME("rwa.mincog.aux_build"));
  graph::DisjointPair pair =
      graph::suurballe(aux.g, aux.w, aux.s_prime, aux.t_second);
  tel.split(WDM_TEL_HIST("rwa.mincog.suurballe_ns"),
            WDM_TEL_NAME("rwa.mincog.suurballe"));
  if (!pair.found) return false;
  if (into != nullptr) {
    into->aux_pair = std::move(pair);
    into->aux = aux;  // copy out of the builder's arena (success path only)
  }
  return true;
}

}  // namespace

namespace {

/// Ablation variant: probe every distinct boundary value just past each
/// link load (plus ϑ_min / ϑ_max) in increasing order. Exact minimum grid
/// threshold, up to O(m) probes.
MinCogResult mincog_linear_scan(const net::WdmNetwork& net, net::NodeId s,
                                net::NodeId t, const MinCogOptions& opt,
                                AuxGraphBuilder& builder) {
  MinCogResult result;
  std::set<double> grid;
  grid.insert(net.theta_min());
  grid.insert(net.theta_max());
  for (graph::EdgeId e = 0; e < net.num_links(); ++e) {
    // Just past each load boundary, where the strict filter admits the link.
    grid.insert(std::nextafter(net.link_load(e),
                               std::numeric_limits<double>::infinity()));
  }
  for (double theta : grid) {
    ++result.iterations;
    result.probes.push_back(theta);
    if (probe(net, s, t, theta, opt, builder, &result)) {
      result.found = true;
      result.theta = theta;
      return result;
    }
    result.last_infeasible_theta = theta;
  }
  return result;
}

/// Ablation variant: bisection on [ϑ_min, ϑ_max] after establishing
/// feasibility at ϑ_max.
MinCogResult mincog_bisection(const net::WdmNetwork& net, net::NodeId s,
                              net::NodeId t, const MinCogOptions& opt,
                              AuxGraphBuilder& builder) {
  MinCogResult result;
  double lo = net.theta_min();
  double hi = net.theta_max();
  ++result.iterations;
  result.probes.push_back(lo);
  if (probe(net, s, t, lo, opt, builder, &result)) {
    result.found = true;
    result.theta = lo;
    return result;
  }
  result.last_infeasible_theta = lo;
  ++result.iterations;
  result.probes.push_back(hi);
  if (!probe(net, s, t, hi, opt, builder, &result)) {
    result.last_infeasible_theta = hi;
    return result;  // drop: infeasible even with every link admitted
  }
  double best = hi;
  while (hi - lo > opt.bisection_tolerance) {
    const double mid = 0.5 * (lo + hi);
    ++result.iterations;
    result.probes.push_back(mid);
    MinCogResult probe_result;
    if (probe(net, s, t, mid, opt, builder, &probe_result)) {
      hi = mid;
      best = mid;
      result.aux_pair = std::move(probe_result.aux_pair);
      result.aux = std::move(probe_result.aux);
    } else {
      lo = mid;
      result.last_infeasible_theta = mid;
    }
  }
  result.found = true;
  result.theta = best;
  return result;
}

}  // namespace

MinCogResult find_two_paths_mincog(const net::WdmNetwork& net, net::NodeId s,
                                   net::NodeId t, const MinCogOptions& opt,
                                   AuxGraphBuilder* builder) {
  AuxGraphBuilder local;
  AuxGraphBuilder& b = (builder != nullptr) ? *builder : local;
  if (opt.search == ThetaSearch::kLinearScan) {
    return mincog_linear_scan(net, s, t, opt, b);
  }
  if (opt.search == ThetaSearch::kBisection) {
    return mincog_bisection(net, s, t, opt, b);
  }

  MinCogResult result;
  const double theta_min = net.theta_min();
  const double theta_max = net.theta_max();
  const double delta = theta_max - theta_min;

  double theta = theta_min;
  // j0 = -⌈log2(Δ)⌉ as in the paper; for Δ >= 1 start doubling immediately.
  int j = (delta > 0.0)
              ? std::max(0, static_cast<int>(std::ceil(-std::log2(delta))))
              : 0;
  while (true) {
    ++result.iterations;
    result.probes.push_back(theta);
    if (probe(net, s, t, theta, opt, b, &result)) {
      result.found = true;
      result.theta = theta;
      return result;
    }
    result.last_infeasible_theta = theta;
    if (theta >= theta_max || delta <= 0.0) break;  // ϑ_max probe failed: drop
    theta = std::min(theta + delta / std::pow(2.0, j), theta_max);
    --j;
    // j < 0 means the increment has grown past Δ; the clamp above has already
    // pushed ϑ to ϑ_max, so the next probe is the final one.
  }
  return result;
}

bool exact_min_threshold(const net::WdmNetwork& net, net::NodeId s,
                         net::NodeId t, double* theta_out) {
  // Under the strict filter, feasibility of G_c(ϑ) flips exactly when ϑ
  // crosses a link-load value U(e)/N(e): the inclusive probe at load L asks
  // "does a pair exist over links with load <= L", and the smallest feasible
  // L is the exact minimum bottleneck load.
  std::set<double> candidates;
  for (graph::EdgeId e = 0; e < net.num_links(); ++e) {
    candidates.insert(net.link_load(e));
  }
  AuxGraphBuilder builder;  // warm across the probe sweep
  for (double load : candidates) {
    if (probe(net, s, t, load, MinCogOptions{}, builder, nullptr, /*inclusive=*/true)) {
      if (theta_out != nullptr) *theta_out = load;
      return true;
    }
  }
  return false;
}

RouteResult MinLoadRouter::route(const net::WdmNetwork& net, net::NodeId s,
                                 net::NodeId t, RouteFootprint* fp) const {
  if (fp != nullptr) fp->mark_opaque();
  if (policy_.kind == net::ProtectKind::kPartial) {
    return route_partial(net, s, t, policy_.threshold);
  }
  WDM_TEL_COUNT("rwa.minload.attempts");
  WDM_TEL_SPAN(tel_span, "rwa.minload.route");
  support::telemetry::SplitTimer tel;
  RouteResult result;
  result.route.policy = policy_;
  const bool srlg_path =
      policy_.kind == net::ProtectKind::kSrlg && net.num_srlgs() > 0;
  const bool band_footprint =
      fp != nullptr && !srlg_path && opt_.search != ThetaSearch::kLinearScan;
  auto sc = scratch_.lease(net);
  MinCogOptions mopt = opt_;
  mopt.stable_arena = true;
  MinCogResult mc = find_two_paths_mincog(net, s, t, mopt, &sc->builder);
  result.theta = mc.theta;
  result.theta_iterations = mc.iterations;
  if (band_footprint) {
    fp->begin();
    fp->load_semantics = true;
    fp->theta_min = net.theta_min();
    fp->theta_max = net.theta_max();
    fp->theta_probes = mc.probes;
    if (mc.found) fp->theta_accepted = mc.theta;
  }
  tel.split(WDM_TEL_HIST("rwa.minload.theta_search_ns"),
            WDM_TEL_NAME("rwa.minload.theta_search"));
  WDM_TEL_COUNT_N("rwa.minload.theta_probes", mc.iterations);
  if (!mc.found) {
    WDM_TEL_COUNT("rwa.minload.blocked");
    tel.total(WDM_TEL_HIST("rwa.minload.route_ns"));
    return result;
  }
  if (policy_.kind == net::ProtectKind::kSrlg && net.num_srlgs() > 0) {
    // Rerun the pair search on the accepted G_c(ϑ) with conflict sets.
    SrlgPairResult sp = srlg_disjoint_pair(net, mc.aux);
    result.srlg_exhaustive = sp.exhaustive;
    if (!sp.pair.found) {
      WDM_TEL_COUNT("rwa.minload.blocked");
      tel.total(WDM_TEL_HIST("rwa.minload.route_ns"));
      return result;
    }
    mc.aux_pair = std::move(sp.pair);
  }
  result.aux_cost = mc.aux_pair.total_cost();

  mc.aux.induced_link_mask_into(mc.aux_pair.first, net.num_links(),
                                &sc->mask1);
  mc.aux.induced_link_mask_into(mc.aux_pair.second, net.num_links(),
                                &sc->mask2);
  if (fp != nullptr && !fp->opaque) {
    fp->add_exact_mask(sc->mask1);
    fp->add_exact_mask(sc->mask2);
  }
  net::Semilightpath p1 = optimal_semilightpath(net, s, t, sc->mask1);
  net::Semilightpath p2 = optimal_semilightpath(net, s, t, sc->mask2);
  tel.split(WDM_TEL_HIST("rwa.minload.liang_shen_ns"),
            WDM_TEL_NAME("rwa.minload.liang_shen"));
  tel.total(WDM_TEL_HIST("rwa.minload.route_ns"));
  if (!p1.found || !p2.found) {
    WDM_TEL_COUNT("rwa.minload.blocked");
    return result;
  }
  WDM_DCHECK(net::edge_disjoint(p1, p2));
  WDM_TEL_COUNT("rwa.minload.found");
  if (p2.cost(net) < p1.cost(net)) std::swap(p1, p2);
  result.found = true;
  result.route.found = true;
  result.route.primary = std::move(p1);
  result.route.backup = std::move(p2);
  return result;
}

}  // namespace wdm::rwa
