#include "rwa/shared_backup.hpp"

#include <algorithm>
#include <unordered_set>

#include "rwa/layered_graph.hpp"
#include "support/check.hpp"

namespace wdm::rwa {

SharedBackupPool::SharedBackupPool(net::WdmNetwork* network, Options options)
    : net_(network), opt_(options) {
  WDM_CHECK(network != nullptr);
  WDM_CHECK(options.sharing_price_factor >= 0.0);
}

bool SharedBackupPool::compatible(
    const Channel& channel,
    const std::vector<graph::EdgeId>& primary_edges) const {
  std::unordered_set<graph::EdgeId> mine(primary_edges.begin(),
                                         primary_edges.end());
  for (long sharer : channel.sharers) {
    const Connection& other = conns_.at(sharer);
    for (const net::Hop& h : other.primary.hops) {
      if (mine.count(h.edge)) return false;
    }
  }
  return true;
}

SharedBackupPool::Provisioned SharedBackupPool::provision(net::NodeId s,
                                                          net::NodeId t) {
  Provisioned out;
  net::Semilightpath primary = optimal_semilightpath(*net_, s, t);
  if (!primary.found) return out;
  const std::vector<graph::EdgeId> primary_edges = primary.physical_edges();

  // Backup search view: residual wavelengths plus compatible shared
  // channels; primary links masked out for edge-disjointness.
  std::vector<std::uint8_t> mask(static_cast<std::size_t>(net_->num_links()),
                                 1);
  for (graph::EdgeId e : primary_edges) {
    mask[static_cast<std::size_t>(e)] = 0;
  }
  LayeredGraph::Overrides view;
  view.available = [&](graph::EdgeId e) {
    net::WavelengthSet usable = net_->available(e);
    net_->installed(e).for_each([&](net::Wavelength l) {
      if (usable.contains(l)) return;
      const auto it = channels_.find({e, l});
      if (it != channels_.end() && compatible(it->second, primary_edges)) {
        usable.insert(l);
      }
    });
    return usable;
  };
  view.weight = [&](graph::EdgeId e, net::Wavelength l) {
    const double real = net_->weight(e, l);
    return channels_.count({e, l}) ? real * opt_.sharing_price_factor : real;
  };
  net::Semilightpath backup =
      optimal_semilightpath_with(*net_, s, t, view, mask);
  if (!backup.found) return out;

  // Book everything.
  out.found = true;
  out.id = next_id_++;
  primary.reserve_in(*net_);
  for (const net::Hop& h : backup.hops) {
    const ChannelKey key{h.edge, h.lambda};
    auto it = channels_.find(key);
    if (it == channels_.end()) {
      net_->reserve(h.edge, h.lambda);  // open a fresh backup channel
      it = channels_.emplace(key, Channel{}).first;
      ++out.dedicated_channels;
    } else {
      ++out.shared_channels;
    }
    it->second.sharers.push_back(out.id);
  }
  out.primary = primary;
  out.backup = backup;
  conns_.emplace(out.id, Connection{std::move(primary), std::move(backup)});
  return out;
}

void SharedBackupPool::release(long id) {
  const auto it = conns_.find(id);
  WDM_CHECK_MSG(it != conns_.end(), "release of unknown connection");
  it->second.primary.release_in(*net_);
  for (const net::Hop& h : it->second.backup.hops) {
    const ChannelKey key{h.edge, h.lambda};
    auto ch = channels_.find(key);
    WDM_CHECK(ch != channels_.end());
    auto& sharers = ch->second.sharers;
    sharers.erase(std::find(sharers.begin(), sharers.end(), id));
    if (sharers.empty()) {
      net_->release(h.edge, h.lambda);
      channels_.erase(ch);
    }
  }
  conns_.erase(it);
}

std::vector<long> SharedBackupPool::fail_link(graph::EdgeId link) {
  std::vector<long> affected;
  for (const auto& [id, conn] : conns_) {
    const bool hit = std::any_of(
        conn.primary.hops.begin(), conn.primary.hops.end(),
        [&](const net::Hop& h) { return h.edge == link; });
    if (hit) affected.push_back(id);
  }
  // No two affected connections may share a channel (their primaries all
  // contain `link`, so the compatibility rule kept them apart).
  std::unordered_set<long long> claimed;
  for (long id : affected) {
    for (const net::Hop& h : conns_.at(id).backup.hops) {
      const long long key = (static_cast<long long>(h.edge) << 8) | h.lambda;
      WDM_CHECK_MSG(claimed.insert(key).second,
                    "SBPP invariant broken: backup channel contention");
    }
  }
  // Activate: the backup becomes a dedicated primary; its channels leave
  // the ledger (they now carry live traffic). The old primary is released.
  for (long id : affected) {
    Connection& conn = conns_.at(id);
    conn.primary.release_in(*net_);
    for (const net::Hop& h : conn.backup.hops) {
      const ChannelKey key{h.edge, h.lambda};
      auto ch = channels_.find(key);
      WDM_CHECK(ch != channels_.end());
      // Evict every other sharer: their protection is gone (they would
      // re-provision in a full system); the channel stays reserved, now as
      // live traffic of `id`.
      for (long other : ch->second.sharers) {
        if (other == id) continue;
        Connection& oc = conns_.at(other);
        // Drop only this channel from the other sharer's backup; simplest
        // faithful model: the other connection loses its backup entirely.
        for (const net::Hop& oh : oc.backup.hops) {
          if (oh.edge == h.edge && oh.lambda == h.lambda) continue;
          const ChannelKey okey{oh.edge, oh.lambda};
          auto och = channels_.find(okey);
          if (och == channels_.end()) continue;
          auto& sh = och->second.sharers;
          const auto pos = std::find(sh.begin(), sh.end(), other);
          if (pos != sh.end()) {
            sh.erase(pos);
            if (sh.empty()) {
              net_->release(oh.edge, oh.lambda);
              channels_.erase(och);
            }
          }
        }
        oc.backup = net::Semilightpath::not_found();
      }
      channels_.erase(key);
    }
    conn.primary = std::move(conn.backup);
    conn.backup = net::Semilightpath::not_found();
  }
  // Unprotected connections (backup dropped above) keep running on their
  // primaries; callers may re-provision.
  return affected;
}

long long SharedBackupPool::dedicated_equivalent_channels() const {
  long long total = 0;
  for (const auto& [id, conn] : conns_) {
    if (conn.backup.found) {
      total += static_cast<long long>(conn.backup.length());
    }
  }
  return total;
}

bool SharedBackupPool::sharers_pairwise_disjoint() const {
  for (const auto& [key, channel] : channels_) {
    for (std::size_t i = 0; i < channel.sharers.size(); ++i) {
      for (std::size_t j = i + 1; j < channel.sharers.size(); ++j) {
        const auto& a = conns_.at(channel.sharers[i]).primary;
        const auto& b = conns_.at(channel.sharers[j]).primary;
        if (!net::edge_disjoint(a, b)) return false;
      }
    }
  }
  return true;
}

}  // namespace wdm::rwa
