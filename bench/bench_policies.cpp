// E13 (extension) — policy studies around the paper's model:
//
//   a. wavelength-assignment policies on the decoupled route-then-assign
//      baseline (first/last-fit, random, most/least-used) — the classic
//      Mokhtar–Azizoglu-style comparison ([16] in the paper);
//   b. batch processing order for §2's periodic request sets;
//   c. replication with 95% confidence intervals for the headline E7
//      comparison (cost-only vs load+cost blocking).
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "rwa/approx_router.hpp"
#include "support/timer.hpp"
#include "rwa/baselines.hpp"
#include "rwa/batch.hpp"
#include "rwa/loadcost_router.hpp"
#include "sim/replicate.hpp"
#include "topology/network_builder.hpp"

namespace {

using namespace wdm;

}  // namespace

int main(int argc, char** argv) {
  wdm::bench::TelemetryScope telemetry(argc, argv);
  const bool quick = wdm::bench::quick_mode(argc, argv);
  wdm::bench::banner(
      "E13 (ext) — wavelength-assignment, batch-order, and replication",
      "a: first-fit/most-used beat random assignment on blocking; b: batch "
      "acceptance depends on processing order under contention; c: the E7 "
      "router ranking holds with confidence intervals.");

  {  // a — WA policy blocking on the physical baseline.
    wdm::support::TextTable table(
        {"WA policy", "blocking (mean)", "ci95", "replicas"});
    for (rwa::WaPolicy policy :
         {rwa::WaPolicy::kFirstFit, rwa::WaPolicy::kLastFit,
          rwa::WaPolicy::kRandom, rwa::WaPolicy::kMostUsed,
          rwa::WaPolicy::kLeastUsed}) {
      rwa::PhysicalFirstFitRouter router(policy);
      support::Rng rng(1);
      topo::NetworkOptions nopt;
      nopt.num_wavelengths = 8;
      // No conversion: wavelength continuity binds, so assignment policy
      // matters most — the classic experimental setting.
      nopt.conversion_model = topo::ConversionModel::kNone;
      const net::WdmNetwork base =
          topo::build_network(topo::nsfnet(), nopt, rng);
      sim::SimOptions opt;
      // Moderate-blocking regime: the classic policy ranking (first-fit /
      // most-used over random / least-used) is a light-to-moderate-load
      // phenomenon; saturation compresses and can invert it.
      opt.traffic.arrival_rate = 12.0;
      opt.traffic.mean_holding = 1.0;
      opt.duration = quick ? 15.0 : 60.0;
      opt.seed = 50;
      const int replicas = quick ? 3 : 10;
      const sim::ReplicationSummary s =
          sim::replicate(base, router, opt, replicas);
      table.add_row({rwa::wa_policy_name(policy),
                     wdm::support::TextTable::num(s.blocking.mean, 4),
                     wdm::support::TextTable::num(s.blocking.ci95, 4),
                     wdm::support::TextTable::integer(replicas)});
    }
    wdm::bench::print_table(table);
  }

  {  // b — batch ordering under contention.
    const int batch_size = 60;
    const int trials = quick ? 5 : 30;
    wdm::support::TextTable table(
        {"batch order", "mean accepted / " +
                            wdm::support::TextTable::integer(batch_size),
         "mean total cost", "mean final rho", "requests/s"});
    for (rwa::BatchOrder order :
         {rwa::BatchOrder::kArrival, rwa::BatchOrder::kShortestFirst,
          rwa::BatchOrder::kLongestFirst, rwa::BatchOrder::kRandom}) {
      support::RunningStats accepted, cost, rho;
      support::Stopwatch sw;
      double provision_ms = 0.0;
      for (int trial = 0; trial < trials; ++trial) {
        support::Rng rng(static_cast<std::uint64_t>(trial) * 13 + 7);
        net::WdmNetwork n = topo::nsfnet_network(4, 0.5);
        std::vector<rwa::BatchRequest> batch;
        for (int i = 0; i < batch_size; ++i) {
          rwa::BatchRequest r;
          r.id = i;
          r.s = static_cast<net::NodeId>(rng.uniform_int(0, 13));
          r.t = r.s;
          while (r.t == r.s) {
            r.t = static_cast<net::NodeId>(rng.uniform_int(0, 13));
          }
          batch.push_back(r);
        }
        rwa::ApproxDisjointRouter router;
        support::Rng order_rng(trial);
        sw.reset();
        const rwa::BatchOutcome out =
            rwa::provision_batch(n, router, batch, order, &order_rng);
        provision_ms += sw.elapsed_ms();
        accepted.add(out.accepted);
        cost.add(out.total_cost);
        rho.add(out.final_network_load);
      }
      const double rps = wdm::bench::requests_per_second(
          static_cast<long long>(trials) * batch_size, provision_ms);
      table.add_row({rwa::batch_order_name(order),
                     wdm::support::TextTable::num(accepted.mean(), 2),
                     wdm::support::TextTable::num(cost.mean(), 1),
                     wdm::support::TextTable::num(rho.mean(), 4),
                     wdm::support::TextTable::num(rps, 0)});
    }
    wdm::bench::print_table(table);
  }

  {  // c — E7 headline with confidence intervals.
    wdm::support::TextTable table(
        {"router", "blocking @40E (mean)", "ci95", "mean rho", "ci95 rho"});
    rwa::ApproxDisjointRouter cost_only;
    rwa::LoadCostRouter load_cost;
    for (const rwa::Router* r :
         {static_cast<const rwa::Router*>(&cost_only),
          static_cast<const rwa::Router*>(&load_cost)}) {
      const net::WdmNetwork base = topo::nsfnet_network(8, 0.5);
      sim::SimOptions opt;
      opt.traffic.arrival_rate = 40.0;
      opt.traffic.mean_holding = 1.0;
      opt.duration = quick ? 15.0 : 60.0;
      opt.seed = 400;
      const int replicas = quick ? 3 : 10;
      const sim::ReplicationSummary s =
          sim::replicate(base, *r, opt, replicas);
      table.add_row(
          {r->name(), wdm::support::TextTable::num(s.blocking.mean, 4),
           wdm::support::TextTable::num(s.blocking.ci95, 4),
           wdm::support::TextTable::num(s.mean_network_load.mean, 4),
           wdm::support::TextTable::num(s.mean_network_load.ci95, 4)});
    }
    wdm::bench::print_table(table);
  }
  return 0;
}
