// E8 — §1's taxonomy: *activate* (pre-reserved backup, the paper's choice)
// vs *passive* (recompute on failure) restoration, and no restoration at
// all. We inject Poisson fiber cuts on NSFNET under live traffic and
// measure recovery success and latency.
#include <array>
#include <cstdio>

#include "bench_common.hpp"
#include "rwa/approx_router.hpp"
#include "sim/simulator.hpp"
#include "support/stats.hpp"
#include "topology/network_builder.hpp"

namespace {

using namespace wdm;

}  // namespace

int main(int argc, char** argv) {
  wdm::bench::TelemetryScope telemetry(argc, argv);
  const bool quick = wdm::bench::quick_mode(argc, argv);
  wdm::bench::banner(
      "E8 / §1 — active vs passive failure restoration",
      "Expected shape: active restoration recovers ~100% of primary-path "
      "failures with millisecond-scale switchover; passive restoration is "
      "orders of magnitude slower and fails when the residual network has "
      "no spare route at failure time; no-restoration drops everything.");

  rwa::ApproxDisjointRouter router;
  wdm::support::TextTable table(
      {"mode", "primary failures", "recovered", "success rate", "switchover",
       "recompute", "mean delay", "p50 delay", "p99 delay", "dropped", "backup lost",
       "reprovisioned"});

  struct ModeArm {
    const char* label;
    sim::RestorationMode mode;
    bool reprovision;
  };
  for (const auto& [label, mode, reprovision] :
       {ModeArm{"active (paper)", sim::RestorationMode::kActive, false},
        ModeArm{"active + reprovision", sim::RestorationMode::kActive, true},
        ModeArm{"passive", sim::RestorationMode::kPassive, false},
        ModeArm{"none", sim::RestorationMode::kNone, false}}) {
    const topo::Topology t = topo::nsfnet();
    support::Rng rng(3);
    topo::NetworkOptions nopt;
    nopt.num_wavelengths = 8;
    net::WdmNetwork network = topo::build_network(t, nopt, rng);

    sim::SimOptions opt;
    opt.traffic.arrival_rate = quick ? 8.0 : 15.0;
    opt.traffic.mean_holding = 2.0;
    opt.duration = quick ? 60.0 : 300.0;
    opt.seed = 17;
    opt.restoration = mode;
    opt.failures.reprovision_backup = reprovision;
    opt.failures.duplex_failure_rate = 0.02;
    opt.failures.mean_repair = 3.0;
    opt.reverse_of = t.reverse_of;
    opt.record_recovery_delays = true;  // the p99 column needs raw samples
    sim::Simulator sim(std::move(network), router, opt);
    const sim::SimMetrics m = sim.run();

    const double success =
        m.recoveries_attempted
            ? static_cast<double>(m.recoveries_succeeded) /
                  static_cast<double>(m.recoveries_attempted)
            : 0.0;
    const double mean_delay =
        m.recovery_delay.count() ? m.recovery_delay.mean() : 0.0;
    // One sort serves the whole quantile ladder.
    const std::array<double, 2> qs{0.50, 0.99};
    const std::vector<double> ps = support::percentiles(m.recovery_delays, qs);
    const double p50 = ps[0];
    const double p99 = ps[1];
    table.add_row({label,
                   wdm::support::TextTable::integer(m.primary_failures),
                   wdm::support::TextTable::integer(m.recoveries_succeeded),
                   wdm::support::TextTable::num(success, 4),
                   wdm::support::TextTable::integer(m.switchover_recoveries),
                   wdm::support::TextTable::integer(m.recompute_recoveries),
                   wdm::support::TextTable::num(mean_delay, 4),
                   wdm::support::TextTable::num(p50, 4),
                   wdm::support::TextTable::num(p99, 4),
                   wdm::support::TextTable::integer(m.dropped_on_failure),
                   wdm::support::TextTable::integer(m.backup_lost),
                   wdm::support::TextTable::integer(m.backups_reprovisioned)});
  }
  wdm::bench::print_table(table);
  wdm::bench::note(
      "Delay model: active = constant lightpath switchover (1 ms); passive "
      "= signaling (50 ms) + 10 ms per hop of the recomputed route. Time "
      "units are the simulator's holding-time units scaled to seconds.");
  return 0;
}
