// E10 — §3.3.2's Find_Two_Paths: Suurballe vs the naive greedy two-step.
// Trap topologies make the greedy heuristic fail outright; on random graphs
// it succeeds less often and pays more when it does. Also times both.
#include <cstdio>

#include "bench_common.hpp"
#include "graph/suurballe.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/timer.hpp"
#include "test_util_bench.hpp"

namespace {

using namespace wdm;

/// Chain of diamond "traps": greedy takes the zig-zag shortest path that
/// blocks both disjoint routes at every stage.
void trap_chain(int stages, graph::Digraph* g, std::vector<double>* w) {
  // Nodes: 0, then per stage two middle nodes, end node per stage.
  // Stage i: a -> m1 (1), m1 -> m2 (0.1), m2 -> b (1), m1 -> b (3), a -> m2 (3)
  *g = graph::Digraph(1);
  graph::NodeId a = 0;
  for (int i = 0; i < stages; ++i) {
    const graph::NodeId m1 = g->add_node();
    const graph::NodeId m2 = g->add_node();
    const graph::NodeId b = g->add_node();
    g->add_edge(a, m1);
    w->push_back(1.0);
    g->add_edge(m1, m2);
    w->push_back(0.1);
    g->add_edge(m2, b);
    w->push_back(1.0);
    g->add_edge(m1, b);
    w->push_back(3.0);
    g->add_edge(a, m2);
    w->push_back(3.0);
    a = b;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = wdm::bench::quick_mode(argc, argv);
  wdm::bench::banner(
      "E10 / §3.3.2 — Find_Two_Paths (Suurballe) vs greedy two-step",
      "Expected shape: greedy fails on every trap instance that Suurballe "
      "solves; on random graphs greedy finds fewer pairs and pays a cost "
      "premium when it succeeds, at similar runtime.");

  {
    wdm::support::TextTable table({"trap stages", "suurballe found",
                                   "suurballe cost", "greedy found"});
    for (int stages : {1, 2, 4, 8}) {
      graph::Digraph g;
      std::vector<double> w;
      trap_chain(stages, &g, &w);
      const graph::NodeId t = g.num_nodes() - 1;
      const graph::DisjointPair sb = graph::suurballe(g, w, 0, t);
      const graph::DisjointPair nv = graph::naive_two_step(g, w, 0, t);
      table.add_row({wdm::support::TextTable::integer(stages),
                     sb.found ? "yes" : "no",
                     sb.found ? wdm::support::TextTable::num(sb.total_cost(), 2)
                              : "-",
                     nv.found ? "YES (unexpected)" : "no"});
    }
    wdm::bench::print_table(table);
  }

  {
    const int trials = quick ? 100 : 2000;
    wdm::support::TextTable table(
        {"n", "trials", "sb found", "greedy found", "greedy cost premium",
         "sb us", "greedy us"});
    for (int n : {10, 20, 40, 80}) {
      int sb_found = 0, nv_found = 0;
      support::RunningStats premium, tsb, tnv;
      for (int trial = 0; trial < trials; ++trial) {
        support::Rng rng(static_cast<std::uint64_t>(n) * 29 + trial);
        const auto [g, w] = test::random_digraph_bench(
            n, 3 * n, rng);
        const graph::NodeId t = n - 1;
        support::Stopwatch sw;
        const graph::DisjointPair sb = graph::suurballe(g, w, 0, t);
        tsb.add(sw.elapsed_us());
        sw.reset();
        const graph::DisjointPair nv = graph::naive_two_step(g, w, 0, t);
        tnv.add(sw.elapsed_us());
        sb_found += sb.found;
        nv_found += nv.found;
        if (sb.found && nv.found) {
          premium.add(nv.total_cost() / sb.total_cost());
        }
      }
      table.add_row({wdm::support::TextTable::integer(n),
                     wdm::support::TextTable::integer(trials),
                     wdm::support::TextTable::integer(sb_found),
                     wdm::support::TextTable::integer(nv_found),
                     wdm::support::TextTable::num(premium.mean(), 4),
                     wdm::support::TextTable::num(tsb.mean(), 1),
                     wdm::support::TextTable::num(tnv.mean(), 1)});
    }
    wdm::bench::print_table(table);
  }
  return 0;
}
