// Minimal random-graph helper for the graph-level benches (mirrors
// tests/test_util.hpp without pulling the test tree into bench targets).
#pragma once

#include <utility>
#include <vector>

#include "graph/digraph.hpp"
#include "support/rng.hpp"

namespace wdm::test {

inline std::pair<graph::Digraph, std::vector<double>> random_digraph_bench(
    int n, int m, support::Rng& rng, double lo = 1.0, double hi = 10.0) {
  graph::Digraph g(n);
  std::vector<double> w;
  for (int i = 0; i < m; ++i) {
    const auto u = static_cast<graph::NodeId>(rng.uniform_int(0, n - 1));
    auto v = u;
    while (v == u) v = static_cast<graph::NodeId>(rng.uniform_int(0, n - 1));
    g.add_edge(u, v);
    w.push_back(rng.uniform(lo, hi));
  }
  return {std::move(g), std::move(w)};
}

}  // namespace wdm::test
