// E6 — §4's motivation: routing that accounts for load cuts the number of
// network reconfigurations. Same Poisson traffic, same trigger; we compare
// the cost-only §3.3 router, the load-only §4.1 router, and the combined
// §4.2 router on reconfiguration count, sampled network load ρ, blocking,
// and delivered route cost.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "rwa/approx_router.hpp"
#include "rwa/loadcost_router.hpp"
#include "rwa/mincog.hpp"
#include "sim/simulator.hpp"
#include "topology/network_builder.hpp"

namespace {

using namespace wdm;

}  // namespace

int main(int argc, char** argv) {
  const bool quick = wdm::bench::quick_mode(argc, argv);
  wdm::bench::banner(
      "E6 / §4 motivation — reconfiguration count under load-aware routing",
      "Expected shape: §4.1 and §4.2 trigger fewer reconfigurations and "
      "lower sampled ρ than cost-only §3.3; §4.2 additionally keeps route "
      "cost close to §3.3 (load-only pays a cost premium).");

  std::vector<rwa::RouterPtr> routers;
  routers.push_back(std::make_unique<rwa::ApproxDisjointRouter>());
  routers.push_back(std::make_unique<rwa::MinLoadRouter>());
  routers.push_back(std::make_unique<rwa::LoadCostRouter>());

  // Offered load per topology sits just above the reconfiguration trigger's
  // knee: saturation would make every min-interval window trigger for every
  // router and erase the comparison.
  for (const auto& [topo_name, topology, W, erlang] :
       std::vector<std::tuple<const char*, topo::Topology, int, double>>{
           {"nsfnet14", topo::nsfnet(), 8, quick ? 12.0 : 18.0},
           {"eon19", topo::eon19(), 12, quick ? 15.0 : 35.0}}) {
    std::printf("-- %s, W=%d, %.0f Erlang --\n", topo_name, W, erlang);
    wdm::support::TextTable table(
        {"router", "offered", "blocking", "reconfigs", "reconfig-drops",
         "mean rho", "peak rho", "mean route cost"});
    for (const auto& router : routers) {
      support::Rng seed_rng(4242);
      topo::NetworkOptions nopt;
      nopt.num_wavelengths = W;
      net::WdmNetwork network = topo::build_network(topology, nopt, seed_rng);

      sim::SimOptions opt;
      opt.traffic.arrival_rate = erlang;
      opt.traffic.mean_holding = 1.0;
      opt.duration = quick ? 30.0 : 120.0;
      opt.seed = 7;  // identical arrival process across routers
      opt.reconfig.load_trigger = 0.75;
      opt.reconfig.min_interval = 2.0;
      sim::Simulator sim(std::move(network), *router, opt);
      const sim::SimMetrics m = sim.run();
      table.add_row(
          {router->name(), wdm::support::TextTable::integer(m.offered),
           wdm::support::TextTable::num(m.blocking_probability(), 4),
           wdm::support::TextTable::integer(m.reconfigurations),
           wdm::support::TextTable::integer(m.reconfig_drops),
           wdm::support::TextTable::num(m.network_load.mean(), 4),
           wdm::support::TextTable::num(m.peak_load, 4),
           wdm::support::TextTable::num(m.route_cost.mean(), 3)});
    }
    wdm::bench::print_table(table);
  }
  wdm::bench::note(
      "A reconfiguration = the network load hit the trigger and the whole "
      "network froze to globally re-route (min 2 time-unit spacing). Same "
      "seed per router, so arrival processes are identical.");
  return 0;
}
