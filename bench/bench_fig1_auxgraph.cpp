// E1 — Fig. 1 reproduction: the residual network G and its auxiliary graph
// G' (§3.3.1), built programmatically. The paper's figure is illustrative;
// this bench reproduces the construction on a small residual network in the
// figure's spirit (5 nodes, partially-used wavelengths) and on NSFNET,
// printing the node/arc inventory and emitting DOT for both graphs.
#include <cstdio>

#include "bench_common.hpp"
#include "graph/dot.hpp"
#include "graph/suurballe.hpp"
#include "rwa/aux_graph.hpp"
#include "support/table.hpp"
#include "topology/network_builder.hpp"

namespace {

using namespace wdm;

net::WdmNetwork figure_network() {
  // s=0, t=4; a 5-node residual network with heterogeneous availability,
  // full conversion (the §3.3 setting Fig. 1 illustrates).
  net::WdmNetwork n(5, 3);
  for (net::NodeId v = 0; v < 5; ++v) {
    n.set_conversion(v, net::ConversionTable::full(3, 0.5));
  }
  auto some = [](std::initializer_list<int> ls) {
    net::WavelengthSet s;
    for (int l : ls) s.insert(l);
    return s;
  };
  n.add_link(0, 1, some({0, 1}), 1.0);
  n.add_link(0, 2, some({1, 2}), 1.0);
  n.add_link(1, 2, some({0}), 1.0);
  n.add_link(1, 3, some({0, 1, 2}), 1.0);
  n.add_link(2, 3, some({2}), 1.0);
  n.add_link(2, 4, some({0, 1}), 1.0);
  n.add_link(3, 4, some({1, 2}), 1.0);
  return n;
}

void report(const char* name, const net::WdmNetwork& n, net::NodeId s,
            net::NodeId t, bool dump_dot) {
  const rwa::AuxGraph aux = rwa::build_aux_graph(n, s, t);
  support::TextTable table({"graph", "nodes", "arcs", "edge-nodes",
                            "link-arcs", "transit-arcs", "hub-arcs"});
  table.add_row({std::string("G (residual)"),
                 support::TextTable::integer(n.num_nodes()),
                 support::TextTable::integer(n.num_links()), "-", "-", "-",
                 "-"});
  const int hub_arcs = aux.g.num_edges() - aux.num_link_arcs -
                       aux.num_transit_arcs;
  table.add_row({std::string("G' (auxiliary)"),
                 support::TextTable::integer(aux.g.num_nodes()),
                 support::TextTable::integer(aux.g.num_edges()),
                 support::TextTable::integer(aux.num_edge_nodes),
                 support::TextTable::integer(aux.num_link_arcs),
                 support::TextTable::integer(aux.num_transit_arcs),
                 support::TextTable::integer(hub_arcs)});
  std::printf("-- %s: s=%d t=%d --\n", name, s, t);
  wdm::bench::print_table(table);

  const graph::DisjointPair pair =
      graph::suurballe(aux.g, aux.w, aux.s_prime, aux.t_second);
  if (pair.found) {
    std::printf("Find_Two_Paths on G': found pair, ω(P1)+ω(P2) = %.4f\n",
                pair.total_cost());
    auto show = [&](const char* label, const graph::Path& p) {
      std::printf("  %s links:", label);
      for (graph::EdgeId link : aux.project(p)) {
        std::printf(" %d->%d", n.graph().tail(link), n.graph().head(link));
      }
      std::printf("\n");
    };
    show("P1", pair.first);
    show("P2", pair.second);
  } else {
    std::printf("Find_Two_Paths on G': no edge-disjoint pair\n");
  }

  if (dump_dot) {
    graph::DotOptions phys;
    phys.graph_name = "G_residual";
    phys.node_label = [](graph::NodeId v) { return "v" + std::to_string(v); };
    phys.edge_label = [&n](graph::EdgeId e) {
      return "|avail|=" + std::to_string(n.available(e).count());
    };
    std::printf("\n%s", graph::to_dot(n.graph(), phys).c_str());

    graph::DotOptions ax;
    ax.graph_name = "G_prime";
    ax.node_label = [&aux](graph::NodeId v) {
      const graph::EdgeId pe = aux.phys_edge_of_node[static_cast<std::size_t>(v)];
      if (pe == graph::kInvalidEdge) {
        return std::string(v == aux.s_prime ? "s'" : "t''");
      }
      return std::string(aux.is_in_node[static_cast<std::size_t>(v)] ? "in"
                                                                     : "out") +
             std::to_string(pe);
    };
    std::printf("\n%s\n", graph::to_dot(aux.g, ax).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = wdm::bench::quick_mode(argc, argv);
  wdm::bench::banner(
      "E1 / Fig. 1 — residual network G and auxiliary graph G'",
      "Programmatic reproduction of the §3.3.1 construction: 2 edge-nodes "
      "per usable link, one link arc per fiber, transit arcs where "
      "conversion is possible, plus the s'/t'' hubs.");

  report("figure-style 5-node residual network", figure_network(), 0, 4,
         /*dump_dot=*/true);

  if (!quick) {
    wdm::support::Rng rng(1);
    wdm::topo::NetworkOptions opt;
    opt.num_wavelengths = 8;
    net::WdmNetwork nsf =
        wdm::topo::build_network(wdm::topo::nsfnet(), opt, rng);
    // Occupy a third of the wavelengths so G' reflects a residual state.
    for (graph::EdgeId e = 0; e < nsf.num_links(); ++e) {
      nsf.available(e).for_each([&](net::Wavelength l) {
        if (rng.bernoulli(0.33)) nsf.reserve(e, l);
      });
    }
    report("NSFNET-14, W=8, ~33% occupied", nsf, 0, 13, /*dump_dot=*/false);
  }
  return 0;
}
