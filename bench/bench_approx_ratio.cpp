// E2 — Theorem 2: the §3.3 approximation delivers cost ≤ 2 × optimal when
// conversion cost at a node is no greater than the traversal cost of any
// incident link. We measure the empirical ratio distribution against the
// exact solver, inside and outside the theorem's assumption, across random
// residual networks; an arm with per-wavelength random costs violates
// assumption (ii) as well.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "rwa/approx_router.hpp"
#include "rwa/exact_router.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "topology/network_builder.hpp"

namespace {

using namespace wdm;

struct Arm {
  const char* label;
  topo::CostModel cost_model;
  double conversion_cost;  // link costs are >= 1, so <=1 keeps the assumption
  bool in_assumption;
};

struct ArmResult {
  support::RunningStats ratio;
  int instances = 0;
  int both_found = 0;
  int violations_of_2 = 0;
  double worst = 0.0;
};

ArmResult run_arm(const Arm& arm, int trials, std::uint64_t seed0) {
  ArmResult out;
  for (int trial = 0; trial < trials; ++trial) {
    support::Rng rng(seed0 + static_cast<std::uint64_t>(trial) * 7907);
    topo::NetworkOptions opt;
    opt.num_wavelengths = 2 + static_cast<int>(rng.uniform_int(0, 2));
    opt.cost_model = arm.cost_model;
    opt.cost_lo = 1.0;
    opt.cost_hi = 8.0;
    opt.conversion_model = topo::ConversionModel::kFullUniform;
    opt.conversion_cost = arm.conversion_cost;
    opt.install_probability = 0.9;
    const int n = 6 + static_cast<int>(rng.uniform_int(0, 6));
    const topo::Topology topo_ =
        topo::random_connected(n, n / 2 + 2, rng);
    net::WdmNetwork network = topo::build_network(topo_, opt, rng);
    // Random residual occupancy.
    for (graph::EdgeId e = 0; e < network.num_links(); ++e) {
      network.available(e).for_each([&](net::Wavelength l) {
        if (rng.bernoulli(0.25)) network.reserve(e, l);
      });
    }
    const net::NodeId s = 0;
    const auto t = static_cast<net::NodeId>(n - 1);
    ++out.instances;

    const rwa::ExactResult exact = rwa::exact_disjoint_pair(network, s, t);
    const rwa::RouteResult approx =
        rwa::ApproxDisjointRouter().route(network, s, t);
    if (!exact.result.found || !approx.found || !exact.proven_optimal) {
      continue;
    }
    ++out.both_found;
    const double ratio =
        approx.total_cost(network) / exact.result.total_cost(network);
    out.ratio.add(ratio);
    out.worst = std::max(out.worst, ratio);
    if (ratio > 2.0 + 1e-9) ++out.violations_of_2;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = wdm::bench::quick_mode(argc, argv);
  const int trials = quick ? 40 : 400;
  wdm::bench::banner(
      "E2 / Theorem 2 — approximation ratio of the §3.3 algorithm",
      "Expected shape: mean ratio close to 1, worst case <= 2 under the "
      "theorem's cost assumption; the bound may be exceeded outside it.");

  const std::vector<Arm> arms = {
      {"in-assumption (conv 0.5 <= w >= 1)", topo::CostModel::kRandomPerLink,
       0.5, true},
      {"boundary (conv == min link cost)", topo::CostModel::kRandomPerLink,
       1.0, true},
      {"violating (i): conv 5 > some links", topo::CostModel::kRandomPerLink,
       5.0, false},
      {"violating (ii): per-λ random costs",
       topo::CostModel::kRandomPerWavelength, 0.5, false},
  };

  wdm::support::TextTable table({"arm", "instances", "compared", "mean",
                                 "p95", "max", ">2 count", "within bound"});
  for (std::size_t i = 0; i < arms.size(); ++i) {
    const ArmResult r = run_arm(arms[i], trials, 1000 + 9001 * i);
    std::vector<double> xs;  // for p95 we re-accumulate via stats on the fly
    table.add_row({arms[i].label, wdm::support::TextTable::integer(r.instances),
                   wdm::support::TextTable::integer(r.both_found),
                   wdm::support::TextTable::num(r.ratio.mean(), 4),
                   wdm::support::TextTable::num(
                       r.ratio.mean() + 1.645 * r.ratio.stddev(), 4),
                   wdm::support::TextTable::num(r.worst, 4),
                   wdm::support::TextTable::integer(r.violations_of_2),
                   arms[i].in_assumption
                       ? (r.violations_of_2 == 0 ? "yes (as proven)" : "NO")
                       : "n/a (outside assumption)"});
  }
  wdm::bench::print_table(table);
  wdm::bench::note(
      "'compared' counts instances where both the exact solver (proven "
      "optimal) and the approximation found a pair; p95 is a normal "
      "approximation from the running moments.");
  return 0;
}
