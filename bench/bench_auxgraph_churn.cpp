// E16 — repeated auxiliary-graph builds under reserve/release churn:
// cold build_aux_graph per call vs a persistent AuxGraphBuilder (arena
// reuse + revision-validated conversion-mean caching).
//
// This is the workload every router actually generates: the dynamic-traffic
// simulator and the MinCog ϑ search rebuild G' / G_c / G_rc thousands of
// times against a network that changes by a handful of wavelengths between
// builds. The acceptance bar for the builder is >= 2x on NSFNET.
//
// Writes BENCH_auxgraph.json next to the working directory (path override
// via argv: --out <path>).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "rwa/aux_graph.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"
#include "topology/network_builder.hpp"

namespace {

using namespace wdm;

struct ArmResult {
  std::string scenario;
  std::string weighting;
  int builds = 0;
  double cold_ms = 0.0;
  double warm_ms = 0.0;
  double speedup() const { return warm_ms > 0.0 ? cold_ms / warm_ms : 0.0; }
  std::uint64_t conv_hits = 0;
  std::uint64_t conv_misses = 0;
};

/// A few random reservation mutations between consecutive builds — the
/// simulator's steady-state: most links untouched, a handful churned.
void churn(net::WdmNetwork& net, support::Rng& rng, int ops) {
  for (int i = 0; i < ops; ++i) {
    const auto e = static_cast<graph::EdgeId>(
        rng.index(static_cast<std::size_t>(net.num_links())));
    if (rng.bernoulli(0.5)) {
      const auto avail = net.available(e).to_vector();
      if (!avail.empty()) net.reserve(e, avail[rng.index(avail.size())]);
    } else {
      std::vector<net::Wavelength> used;
      net.installed(e).for_each([&](net::Wavelength l) {
        if (net.is_used(e, l)) used.push_back(l);
      });
      if (!used.empty()) net.release(e, used[rng.index(used.size())]);
    }
  }
}

ArmResult run_arm(const char* scenario, const net::WdmNetwork& base,
                  rwa::AuxWeighting weighting, const char* wname, int builds,
                  std::uint64_t seed) {
  ArmResult r;
  r.scenario = scenario;
  r.weighting = wname;
  r.builds = builds;

  rwa::AuxGraphOptions opt;
  opt.weighting = weighting;
  if (weighting != rwa::AuxWeighting::kCost) opt.theta = 0.9;

  const auto n = static_cast<std::size_t>(base.num_nodes());
  // Pre-draw identical query + churn streams for both arms.
  std::vector<std::pair<net::NodeId, net::NodeId>> queries;
  {
    support::Rng qrng(seed);
    for (int i = 0; i < builds; ++i) {
      const auto s = static_cast<net::NodeId>(qrng.index(n));
      const auto t = static_cast<net::NodeId>(
          (static_cast<std::size_t>(s) + 1 + qrng.index(n - 1)) % n);
      queries.emplace_back(s, t);
    }
  }

  volatile double sink = 0.0;  // defeat dead-code elimination
  {
    net::WdmNetwork net = base;
    support::Rng rng(seed + 1);
    support::Stopwatch sw;
    for (int i = 0; i < builds; ++i) {
      churn(net, rng, 3);
      const rwa::AuxGraph aux =
          rwa::build_aux_graph(net, queries[static_cast<std::size_t>(i)].first,
                               queries[static_cast<std::size_t>(i)].second,
                               opt);
      sink = sink + (aux.w.empty() ? 0.0 : aux.w.back());
    }
    r.cold_ms = sw.elapsed_ms();
  }
  {
    net::WdmNetwork net = base;
    support::Rng rng(seed + 1);  // identical churn stream
    rwa::AuxGraphBuilder builder;
    support::Stopwatch sw;
    for (int i = 0; i < builds; ++i) {
      churn(net, rng, 3);
      const rwa::AuxGraph& aux =
          builder.build(net, queries[static_cast<std::size_t>(i)].first,
                        queries[static_cast<std::size_t>(i)].second, opt);
      sink = sink + (aux.w.empty() ? 0.0 : aux.w.back());
    }
    r.warm_ms = sw.elapsed_ms();
    r.conv_hits = builder.stats().conv_hits;
    r.conv_misses = builder.stats().conv_misses;
  }
  (void)sink;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  wdm::bench::TelemetryScope telemetry(argc, argv);
  const bool quick = wdm::bench::quick_mode(argc, argv);
  std::string out_path = "BENCH_auxgraph.json";
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0) out_path = argv[i + 1];
  }
  wdm::bench::banner(
      "E16 — aux-graph build throughput under churn",
      "Expected shape: the reusable AuxGraphBuilder (arena reuse + "
      "revision-validated conversion-mean caching) beats a cold "
      "build_aux_graph per request by >= 2x on NSFNET, growing with "
      "topology size and wavelength count.");

  const int builds = quick ? 300 : 2000;

  std::vector<ArmResult> results;
  {
    // NSFNET, W=16, full conversion — the paper's canonical setting.
    const net::WdmNetwork nsf = topo::nsfnet_network(16, 0.5);
    results.push_back(run_arm("nsfnet-w16", nsf, rwa::AuxWeighting::kCost,
                              "G'", builds, 101));
    results.push_back(run_arm("nsfnet-w16", nsf,
                              rwa::AuxWeighting::kLoadExponential, "G_c",
                              builds, 102));
    results.push_back(run_arm("nsfnet-w16", nsf,
                              rwa::AuxWeighting::kCostLoadFiltered, "G_rc",
                              builds, 103));
  }
  {
    // Larger random WAN: 60 nodes, extra duplex links, W=32.
    support::Rng rng(7);
    const topo::Topology t = topo::random_connected(60, 50, rng);
    topo::NetworkOptions nopt;
    nopt.num_wavelengths = 32;
    const net::WdmNetwork big = topo::build_network(t, nopt, rng);
    results.push_back(run_arm("random60-w32", big, rwa::AuxWeighting::kCost,
                              "G'", builds / 2, 201));
    results.push_back(run_arm("random60-w32", big,
                              rwa::AuxWeighting::kCostLoadFiltered, "G_rc",
                              builds / 2, 202));
  }

  wdm::support::TextTable table({"scenario", "graph", "builds", "cold ms",
                                 "warm ms", "speedup", "conv hit rate"});
  bool nsfnet_bar_met = true;
  for (const ArmResult& r : results) {
    const double hit_rate =
        (r.conv_hits + r.conv_misses)
            ? static_cast<double>(r.conv_hits) /
                  static_cast<double>(r.conv_hits + r.conv_misses)
            : 0.0;
    if (r.scenario == "nsfnet-w16" && r.speedup() < 2.0) {
      nsfnet_bar_met = false;
    }
    table.add_row({r.scenario, r.weighting,
                   wdm::support::TextTable::integer(r.builds),
                   wdm::support::TextTable::num(r.cold_ms, 2),
                   wdm::support::TextTable::num(r.warm_ms, 2),
                   wdm::support::TextTable::num(r.speedup(), 2),
                   wdm::support::TextTable::num(hit_rate, 3)});
  }
  wdm::bench::print_table(table);
  std::printf("NSFNET >= 2x acceptance bar: %s\n",
              nsfnet_bar_met ? "MET" : "NOT MET");

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"experiment\": \"E16 aux-graph churn\",\n");
  std::fprintf(f, "  \"builds_per_arm\": %d,\n  \"churn_ops_per_build\": 3,\n",
               builds);
  std::fprintf(f, "  \"nsfnet_2x_bar_met\": %s,\n",
               nsfnet_bar_met ? "true" : "false");
  std::fprintf(f, "  \"arms\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ArmResult& r = results[i];
    std::fprintf(
        f,
        "    {\"scenario\": \"%s\", \"graph\": \"%s\", \"builds\": %d, "
        "\"cold_ms\": %.3f, \"warm_ms\": %.3f, \"speedup\": %.3f, "
        "\"conv_hits\": %llu, \"conv_misses\": %llu}%s\n",
        r.scenario.c_str(), r.weighting.c_str(), r.builds, r.cold_ms,
        r.warm_ms, r.speedup(), static_cast<unsigned long long>(r.conv_hits),
        static_cast<unsigned long long>(r.conv_misses),
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return nsfnet_bar_met ? 0 : 2;
}
