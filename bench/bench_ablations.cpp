// E12 (extension) — ablations of the design choices DESIGN.md calls out:
//
//   A. the Lemma 2 refinement (per-subgraph optimal semilightpath) vs plain
//      first-fit realization of the auxiliary paths;
//   B. the G_rc weight normalization: paper's Σw/N(e) vs the true mean
//      Σw/|Λ_avail(e)|;
//   C. the ϑ search: the paper's doubling increments vs an exact linear
//      boundary scan vs bisection;
//   D. the G_c exponent base a.
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "rwa/approx_router.hpp"
#include "rwa/loadcost_router.hpp"
#include "rwa/mincog.hpp"
#include "sim/simulator.hpp"
#include "support/stats.hpp"
#include "topology/network_builder.hpp"

namespace {

using namespace wdm;

net::WdmNetwork loaded_nsfnet(int W, double occupancy, std::uint64_t seed,
                              topo::CostModel cost_model =
                                  topo::CostModel::kUnit) {
  support::Rng rng(seed);
  topo::NetworkOptions opt;
  opt.num_wavelengths = W;
  opt.cost_model = cost_model;
  net::WdmNetwork n = topo::build_network(topo::nsfnet(), opt, rng);
  for (graph::EdgeId e = 0; e < n.num_links(); ++e) {
    n.available(e).for_each([&](net::Wavelength l) {
      if (rng.bernoulli(occupancy)) n.reserve(e, l);
    });
  }
  return n;
}

sim::SimMetrics run_sim(const rwa::Router& router, double erlang,
                        double duration) {
  support::Rng rng(1);
  topo::NetworkOptions nopt;
  nopt.num_wavelengths = 8;
  net::WdmNetwork network = topo::build_network(topo::nsfnet(), nopt, rng);
  sim::SimOptions opt;
  opt.traffic.arrival_rate = erlang;
  opt.traffic.mean_holding = 1.0;
  opt.duration = duration;
  opt.seed = 77;
  sim::Simulator sim(std::move(network), router, opt);
  return sim.run();
}

double pair_bottleneck_load(const net::WdmNetwork& n,
                            const rwa::RouteResult& r) {
  double worst = 0.0;
  for (const net::Hop& h : r.route.primary.hops) {
    worst = std::max(worst, n.link_load(h.edge));
  }
  for (const net::Hop& h : r.route.backup.hops) {
    worst = std::max(worst, n.link_load(h.edge));
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = wdm::bench::quick_mode(argc, argv);
  const double duration = quick ? 20.0 : 80.0;
  const int trials = quick ? 40 : 300;
  wdm::bench::banner("E12 (ext) — design-choice ablations",
                     "A: Lemma 2 refinement; B: G_rc normalization; C: ϑ "
                     "search strategy; D: G_c exponent base.");

  {  // A — refinement on/off, per-request cost on loaded networks + sim.
    support::RunningStats delta;
    int both = 0, only_refined = 0;
    rwa::ApproxDisjointRouter refined(true), unrefined(false);
    for (int i = 0; i < trials; ++i) {
      // Per-wavelength random costs: the refinement's per-subgraph optimal
      // semilightpath can actually pick cheaper wavelengths than first-fit
      // (under unit costs the two realizations tie almost everywhere).
      net::WdmNetwork n = loaded_nsfnet(
          8, 0.4, 100 + i, topo::CostModel::kRandomPerWavelength);
      support::Rng rng(200 + i);
      const auto s = static_cast<net::NodeId>(rng.uniform_int(0, 13));
      auto t = s;
      while (t == s) t = static_cast<net::NodeId>(rng.uniform_int(0, 13));
      const rwa::RouteResult a = refined.route(n, s, t);
      const rwa::RouteResult b = unrefined.route(n, s, t);
      if (a.found && !b.found) ++only_refined;
      if (a.found && b.found) {
        ++both;
        delta.add(b.total_cost(n) / a.total_cost(n));
      }
    }
    const sim::SimMetrics ma = run_sim(refined, 40.0, duration);
    const sim::SimMetrics mb = run_sim(unrefined, 40.0, duration);
    wdm::support::TextTable table(
        {"variant", "pairs found (of both-arm trials)",
         "cost vs refined (mean ratio)", "sim blocking @40E"});
    table.add_row({"Lemma 2 refinement (paper)", "baseline", "1.0000",
                   wdm::support::TextTable::num(ma.blocking_probability(), 4)});
    table.add_row({"first-fit realization",
                   wdm::support::TextTable::integer(both) + " (+" +
                       wdm::support::TextTable::integer(only_refined) +
                       " only refined finds)",
                   wdm::support::TextTable::num(delta.mean(), 4),
                   wdm::support::TextTable::num(mb.blocking_probability(), 4)});
    wdm::bench::print_table(table);
  }

  {  // B — G_rc normalization in the §4.2 router.
    rwa::LoadCostRouter paper({}, /*grc_mean_over_available=*/false);
    rwa::LoadCostRouter mean_avail({}, /*grc_mean_over_available=*/true);
    wdm::support::TextTable table(
        {"G_rc weight", "blocking @40E", "mean rho", "mean route cost"});
    for (const rwa::Router* r :
         {static_cast<const rwa::Router*>(&paper),
          static_cast<const rwa::Router*>(&mean_avail)}) {
      const sim::SimMetrics m = run_sim(*r, 40.0, duration);
      table.add_row({r->name(),
                     wdm::support::TextTable::num(m.blocking_probability(), 4),
                     wdm::support::TextTable::num(m.network_load.mean(), 4),
                     wdm::support::TextTable::num(m.route_cost.mean(), 3)});
    }
    wdm::bench::print_table(table);
  }

  {  // C — ϑ search strategy.
    wdm::support::TextTable table({"search", "feasible", "mean probes",
                                   "max probes", "mean accepted ϑ"});
    for (const auto& [label, strat] :
         {std::pair<const char*, rwa::ThetaSearch>{
              "doubling (paper)", rwa::ThetaSearch::kDoubling},
          {"linear boundary scan", rwa::ThetaSearch::kLinearScan},
          {"bisection (tol 1e-3)", rwa::ThetaSearch::kBisection}}) {
      support::RunningStats probes, theta;
      int feasible = 0;
      for (int i = 0; i < trials; ++i) {
        net::WdmNetwork n = loaded_nsfnet(8, 0.55, 300 + i);
        support::Rng rng(400 + i);
        const auto s = static_cast<net::NodeId>(rng.uniform_int(0, 13));
        auto t = s;
        while (t == s) t = static_cast<net::NodeId>(rng.uniform_int(0, 13));
        rwa::MinCogOptions opt;
        opt.search = strat;
        const rwa::MinCogResult mc = rwa::find_two_paths_mincog(n, s, t, opt);
        if (!mc.found) continue;
        ++feasible;
        probes.add(mc.iterations);
        theta.add(mc.theta);
      }
      table.add_row({label, wdm::support::TextTable::integer(feasible),
                     wdm::support::TextTable::num(probes.mean(), 2),
                     wdm::support::TextTable::num(probes.max(), 0),
                     wdm::support::TextTable::num(theta.mean(), 4)});
    }
    wdm::bench::print_table(table);
  }

  {  // D — G_c exponent base: bottleneck load of delivered pairs.
    wdm::support::TextTable table(
        {"base a", "feasible", "mean pair bottleneck load"});
    for (double a : {1.1, 2.0, 8.0, 64.0}) {
      support::RunningStats bottleneck;
      int feasible = 0;
      rwa::MinCogOptions mopt;
      mopt.load_base = a;
      rwa::MinLoadRouter router(mopt);
      for (int i = 0; i < trials; ++i) {
        net::WdmNetwork n = loaded_nsfnet(8, 0.55, 500 + i);
        support::Rng rng(600 + i);
        const auto s = static_cast<net::NodeId>(rng.uniform_int(0, 13));
        auto t = s;
        while (t == s) t = static_cast<net::NodeId>(rng.uniform_int(0, 13));
        const rwa::RouteResult r = router.route(n, s, t);
        if (!r.found) continue;
        ++feasible;
        bottleneck.add(pair_bottleneck_load(n, r));
      }
      table.add_row({wdm::support::TextTable::num(a, 1),
                     wdm::support::TextTable::integer(feasible),
                     wdm::support::TextTable::num(bottleneck.mean(), 4)});
    }
    wdm::bench::print_table(table);
  }

  wdm::bench::note(
      "Reading: A shows the Lemma 2 step is where the approximation's cost "
      "quality comes from; B quantifies the N(e)-vs-|Λ_avail| discrepancy we "
      "flagged in the paper's G_rc formula; C shows the doubling search "
      "probes far fewer G_c constructions than a boundary scan at slightly "
      "coarser ϑ; D shows a steeper exponent biases Suurballe towards "
      "colder links at equal feasibility.");
  return 0;
}
