// Shared scaffolding for the experiment harness (E1–E10): banner printing
// and the --quick flag that shrinks replication for smoke runs.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "support/table.hpp"
#include "support/telemetry.hpp"

namespace wdm::bench {

inline bool quick_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) return true;
  }
  return false;
}

/// Opt-in telemetry for benches: `--telemetry out.json` enables the runtime
/// gate for the whole run and dumps the registry on scope exit (end of
/// main); `--trace out.trace.json` additionally writes a Chrome trace-event
/// (Perfetto-loadable) export; `--stream out.jsonl` publishes live delta
/// frames while the bench runs (`--stream-interval s` sets the stride, tail
/// with wdmtop); `--prom out.prom` writes Prometheus text exposition at
/// exit. Without the flags — or when compiled out — this is inert. The
/// stream stops in the destructor, so the final frame flushes even when the
/// bench exits by exception.
class TelemetryScope {
 public:
  TelemetryScope(int argc, char** argv) {
    double stream_interval = 1.0;
    std::string stream_path;
    for (int i = 1; i + 1 < argc; ++i) {
      if (std::strcmp(argv[i], "--telemetry") == 0) path_ = argv[i + 1];
      if (std::strcmp(argv[i], "--trace") == 0) trace_path_ = argv[i + 1];
      if (std::strcmp(argv[i], "--stream") == 0) stream_path = argv[i + 1];
      if (std::strcmp(argv[i], "--stream-interval") == 0) {
        stream_interval = std::atof(argv[i + 1]);
      }
      if (std::strcmp(argv[i], "--prom") == 0) prom_path_ = argv[i + 1];
    }
    if (!path_.empty() || !trace_path_.empty() || !stream_path.empty() ||
        !prom_path_.empty()) {
      support::telemetry::set_enabled(true);
      std::string cmd;
      for (int i = 0; i < argc; ++i) {
        if (i > 0) cmd += ' ';
        cmd += argv[i];
      }
      support::telemetry::set_meta("command", cmd);
    }
    if (!stream_path.empty()) {
      support::telemetry::StreamOptions sopt;
      sopt.path = stream_path;
      sopt.interval_s = stream_interval > 0.0 ? stream_interval : 1.0;
      if (!support::telemetry::start_stream(sopt)) {
        std::fprintf(stderr, "telemetry: cannot start stream to %s\n",
                     stream_path.c_str());
      }
    }
  }
  ~TelemetryScope() {
    support::telemetry::stop_stream();  // final frame first, then the dumps
    if (!prom_path_.empty()) {
      if (support::telemetry::write_prometheus_file(prom_path_)) {
        std::printf("telemetry: wrote %s\n", prom_path_.c_str());
      } else {
        std::fprintf(stderr, "telemetry: failed to write %s\n",
                     prom_path_.c_str());
      }
    }
    if (!path_.empty()) {
      if (support::telemetry::write_file(path_)) {
        std::printf("telemetry: wrote %s\n", path_.c_str());
      } else {
        std::fprintf(stderr, "telemetry: failed to write %s\n", path_.c_str());
      }
    }
    if (!trace_path_.empty()) {
      if (support::telemetry::write_chrome_trace_file(trace_path_)) {
        std::printf("telemetry: wrote %s\n", trace_path_.c_str());
      } else {
        std::fprintf(stderr, "telemetry: failed to write %s\n",
                     trace_path_.c_str());
      }
    }
  }
  TelemetryScope(const TelemetryScope&) = delete;
  TelemetryScope& operator=(const TelemetryScope&) = delete;

 private:
  std::string path_;
  std::string trace_path_;
  std::string prom_path_;
};

inline void banner(const std::string& experiment, const std::string& claim) {
  std::printf("==== %s ====\n%s\n\n", experiment.c_str(), claim.c_str());
}

inline void print_table(const support::TextTable& t) {
  std::fputs(t.to_string().c_str(), stdout);
  std::fputs("\n", stdout);
}

inline void note(const std::string& s) {
  std::printf("note: %s\n", s.c_str());
}

/// The one definition of provisioning throughput shared by every bench that
/// reports it (E13b, E17): requests *processed* — accepted or dropped, both
/// cost a routing attempt — per wall-clock second.
inline double requests_per_second(long long requests, double elapsed_ms) {
  return elapsed_ms > 0.0
             ? 1000.0 * static_cast<double>(requests) / elapsed_ms
             : 0.0;
}

}  // namespace wdm::bench
