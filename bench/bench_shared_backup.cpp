// E14 (extension) — shared vs dedicated backup capacity, in the spirit of
// the paper's [11] (Kodialam–Lakshman). Provision the same request sequence
// with (a) the paper's dedicated protection (§3.3 + reserve both paths) and
// (b) SBPP; compare wavelength-links consumed, acceptance, and the backup
// capacity savings.
#include <cstdio>

#include "bench_common.hpp"
#include "rwa/approx_router.hpp"
#include "rwa/shared_backup.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "topology/network_builder.hpp"

namespace {

using namespace wdm;

}  // namespace

int main(int argc, char** argv) {
  const bool quick = wdm::bench::quick_mode(argc, argv);
  const int trials = quick ? 4 : 20;
  wdm::bench::banner(
      "E14 (ext) — shared (SBPP) vs dedicated backup capacity",
      "Expected shape: SBPP serves the same demand with substantially fewer "
      "backup wavelength-links, at equal or better acceptance; savings grow "
      "with demand (more sharing opportunities).");

  wdm::support::TextTable table(
      {"demands", "accepted (dedicated)", "accepted (SBPP)",
       "wl-links dedicated", "wl-links SBPP", "backup channels SBPP",
       "backup savings"});
  for (int demands : {10, 20, 40, 80}) {
    support::RunningStats acc_d, acc_s, use_d, use_s, chan_s, savings;
    for (int trial = 0; trial < trials; ++trial) {
      support::Rng rng(static_cast<std::uint64_t>(demands) * 101 + trial);
      // Same request list for both schemes.
      std::vector<std::pair<net::NodeId, net::NodeId>> reqs;
      for (int i = 0; i < demands; ++i) {
        const auto s = static_cast<net::NodeId>(rng.uniform_int(0, 13));
        auto t = s;
        while (t == s) t = static_cast<net::NodeId>(rng.uniform_int(0, 13));
        reqs.emplace_back(s, t);
      }

      net::WdmNetwork dedicated = topo::nsfnet_network(16, 0.5);
      rwa::ApproxDisjointRouter router;
      int a_d = 0;
      long long backup_links_dedicated = 0;
      for (const auto& [s, t] : reqs) {
        const rwa::RouteResult r = router.route(dedicated, s, t);
        if (r.found && r.route.feasible(dedicated)) {
          r.route.reserve_in(dedicated);
          backup_links_dedicated +=
              static_cast<long long>(r.route.backup.length());
          ++a_d;
        }
      }

      net::WdmNetwork shared = topo::nsfnet_network(16, 0.5);
      rwa::SharedBackupPool pool(&shared);
      int a_s = 0;
      for (const auto& [s, t] : reqs) {
        a_s += pool.provision(s, t).found;
      }

      acc_d.add(a_d);
      acc_s.add(a_s);
      use_d.add(static_cast<double>(dedicated.total_usage()));
      use_s.add(static_cast<double>(shared.total_usage()));
      chan_s.add(static_cast<double>(pool.backup_channels()));
      if (backup_links_dedicated > 0) {
        savings.add(1.0 - static_cast<double>(pool.backup_channels()) /
                              static_cast<double>(
                                  pool.dedicated_equivalent_channels()));
      }
    }
    table.add_row({wdm::support::TextTable::integer(demands),
                   wdm::support::TextTable::num(acc_d.mean(), 1),
                   wdm::support::TextTable::num(acc_s.mean(), 1),
                   wdm::support::TextTable::num(use_d.mean(), 1),
                   wdm::support::TextTable::num(use_s.mean(), 1),
                   wdm::support::TextTable::num(chan_s.mean(), 1),
                   wdm::support::TextTable::num(savings.mean() * 100.0, 1) +
                       "%"});
  }
  wdm::bench::print_table(table);
  wdm::bench::note(
      "wl-links = total reserved wavelength-links after provisioning "
      "(primaries + backup capacity). 'backup savings' = 1 − shared "
      "channels / dedicated-equivalent channels for the SBPP run.");
  return 0;
}
