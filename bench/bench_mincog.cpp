// E5 — Theorem 3: Find_Two_Paths_MinCog delivers a network-load threshold
// within the theorem's ratio of the optimum, in O(log 1/Δ) probes. We
// compare the accepted ϑ against the exact minimum bottleneck load L*
// (inclusive-filter oracle), report the overshoot ratio against the last
// infeasible probe (the quantity the telescoping proof bounds), and count
// probe iterations.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "rwa/mincog.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "topology/network_builder.hpp"

namespace {

using namespace wdm;

}  // namespace

int main(int argc, char** argv) {
  const bool quick = wdm::bench::quick_mode(argc, argv);
  const int trials = quick ? 30 : 300;
  wdm::bench::banner(
      "E5 / Theorem 3 — MinCog threshold quality and probe count",
      "Expected shape: accepted ϑ strictly above the exact bottleneck L*, "
      "overshoot ratio vs the last infeasible probe < 3 beyond the first "
      "increment, probes logarithmic in 1/Δ.");

  wdm::support::TextTable table(
      {"occupancy", "trials", "feasible", "mean L*", "mean ϑ",
       "mean ϑ-L*", "max ratio(>2 probes)", "mean probes", "max probes"});

  for (double occupancy : {0.2, 0.4, 0.6, 0.8}) {
    support::RunningStats lstar, theta, gap, probes;
    double max_ratio = 0.0;
    int feasible = 0;
    for (int trial = 0; trial < trials; ++trial) {
      support::Rng rng(static_cast<std::uint64_t>(occupancy * 1000) * 131 +
                       trial);
      topo::NetworkOptions opt;
      opt.num_wavelengths = 8;
      net::WdmNetwork network =
          topo::build_network(topo::nsfnet(), opt, rng);
      for (graph::EdgeId e = 0; e < network.num_links(); ++e) {
        network.available(e).for_each([&](net::Wavelength l) {
          if (rng.bernoulli(occupancy)) network.reserve(e, l);
        });
      }
      const auto s = static_cast<net::NodeId>(rng.uniform_int(0, 13));
      auto t = s;
      while (t == s) t = static_cast<net::NodeId>(rng.uniform_int(0, 13));

      double exact = 0.0;
      const bool ok = rwa::exact_min_threshold(network, s, t, &exact);
      const rwa::MinCogResult mc = rwa::find_two_paths_mincog(network, s, t);
      if (!ok || !mc.found) continue;
      ++feasible;
      lstar.add(exact);
      theta.add(mc.theta);
      gap.add(mc.theta - exact);
      probes.add(mc.iterations);
      if (mc.iterations > 2 && !std::isnan(mc.last_infeasible_theta) &&
          mc.last_infeasible_theta > 0) {
        max_ratio =
            std::max(max_ratio, mc.theta / mc.last_infeasible_theta);
      }
    }
    table.add_row({wdm::support::TextTable::num(occupancy, 1),
                   wdm::support::TextTable::integer(trials),
                   wdm::support::TextTable::integer(feasible),
                   wdm::support::TextTable::num(lstar.mean(), 4),
                   wdm::support::TextTable::num(theta.mean(), 4),
                   wdm::support::TextTable::num(gap.mean(), 4),
                   wdm::support::TextTable::num(max_ratio, 3),
                   wdm::support::TextTable::num(probes.mean(), 2),
                   wdm::support::TextTable::num(probes.max(), 0)});
  }
  wdm::bench::print_table(table);
  wdm::bench::note(
      "L* from the inclusive-threshold oracle (min bottleneck load over all "
      "edge-disjoint pairs); the strict-filter search accepts the first "
      "probe above it. Ratio column only counts searches with >2 probes, "
      "where the Theorem 3 telescoping bound applies.");
  return 0;
}
