// E7 — dynamic provisioning (§1–2): blocking probability vs offered load
// for the paper's routers and the baselines, on NSFNET and ARPANET-class
// topologies. This is the evaluation the WDM routing literature of the
// period reports ([11],[15],[16]); the paper defers it, so we supply it.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "rwa/approx_router.hpp"
#include "rwa/baselines.hpp"
#include "rwa/loadcost_router.hpp"
#include "rwa/mincog.hpp"
#include "sim/simulator.hpp"
#include "topology/network_builder.hpp"

namespace {

using namespace wdm;

double blocking_at(const rwa::Router& router, const topo::Topology& topology,
                   int W, double erlang, double duration) {
  support::Rng rng(1);
  topo::NetworkOptions nopt;
  nopt.num_wavelengths = W;
  net::WdmNetwork network = topo::build_network(topology, nopt, rng);
  sim::SimOptions opt;
  opt.traffic.arrival_rate = erlang;  // mean holding 1 => Erlang = rate
  opt.traffic.mean_holding = 1.0;
  opt.duration = duration;
  opt.seed = 99;
  sim::Simulator sim(std::move(network), router, opt);
  return sim.run().blocking_probability();
}

}  // namespace

int main(int argc, char** argv) {
  wdm::bench::TelemetryScope telemetry(argc, argv);
  const bool quick = wdm::bench::quick_mode(argc, argv);
  const double duration = quick ? 20.0 : 80.0;
  wdm::bench::banner(
      "E7 / blocking probability vs offered load (Erlangs)",
      "Expected shape: blocking rises with load for every policy; the "
      "load-aware §4 routers block less at high load than cost-only §3.3; "
      "the wavelength-blind physical baseline blocks most; unprotected "
      "(no backup) blocks least but offers no survivability.");

  std::vector<rwa::RouterPtr> routers;
  routers.push_back(std::make_unique<rwa::ApproxDisjointRouter>());
  routers.push_back(std::make_unique<rwa::MinLoadRouter>());
  routers.push_back(std::make_unique<rwa::LoadCostRouter>());
  routers.push_back(std::make_unique<rwa::TwoStepRouter>());
  routers.push_back(std::make_unique<rwa::PhysicalFirstFitRouter>());
  routers.push_back(std::make_unique<rwa::UnprotectedRouter>());

  const std::vector<double> loads =
      quick ? std::vector<double>{10, 40} : std::vector<double>{5, 10, 20, 40, 60, 80};

  for (const auto& [topo_name, topology, W] :
       std::vector<std::tuple<const char*, topo::Topology, int>>{
           {"nsfnet14", topo::nsfnet(), 8},
           {"arpanet20", topo::arpanet20(), 8}}) {
    std::printf("-- %s, W=%d, holding=1.0 --\n", topo_name, W);
    std::vector<std::string> header{"router \\ Erlang"};
    for (double l : loads) header.push_back(wdm::support::TextTable::num(l, 0));
    wdm::support::TextTable table(header);
    for (const auto& router : routers) {
      std::vector<std::string> row{router->name()};
      for (double l : loads) {
        row.push_back(wdm::support::TextTable::num(
            blocking_at(*router, topology, W, l, duration), 4));
      }
      table.add_row(row);
    }
    wdm::bench::print_table(table);
  }
  wdm::bench::note(
      "Protected policies consume ~2x wavelength-links per request "
      "(primary + reserved backup), so their blocking exceeds unprotected "
      "routing at equal load — the survivability premium.");
  return 0;
}
