// E17 — optimistic parallel batch provisioning: serial provision_batch vs
// rwa::ParallelBatchEngine at 1/2/4/8 worker threads on NSFNET-W16 and a
// 60-node random WAN at W=32, under contention heavy enough that batches
// actually drop requests (the regime the engine's drop-run speculation
// targets).
//
// Three things are enforced by exit status, not just reported:
//   * determinism — at EVERY thread count the engine's outcome (accept set,
//     routes, cost sum, reservation ledger) must equal the serial loop's,
//     and the 1-thread engine must equal serial by construction (exit 3 on
//     any mismatch, always enforced);
//   * the speedup bar — >= 2x serial throughput at 4 threads on
//     random60-w32 (exit 2 when missed). The bar is only *meaningful* on a
//     machine with >= 4 usable cores; on smaller hosts (or under
//     ROBUSTWDM_E17_SKIP_BAR=1 for sanitizer smoke runs) it is waived — and
//     the waiver is LOUD: distinct exit code 4, recorded in the JSON, so CI
//     surfaces it as a warning instead of a silent pass;
//   * the 1-thread bar — the 1T engine arm short-circuits to the serial
//     provision_batch path, so it must not be measurably slower than serial:
//     speedup >= 0.98 or exit 5 (the pre-footprint engine ran 0.924x here by
//     spinning up its snapshot pool for nothing). Measured on thread-CPU
//     time over interleaved serial/engine passes, with a serial-vs-serial
//     A/A control through the same harness; a miss only becomes exit 5 when
//     the control sits inside the 2% band — a host whose A/A control itself
//     strays past 2% cannot resolve the bar, and it is waived via exit 4
//     like the speedup bar (loud, recorded in the JSON, never a silent
//     pass).
//
// The authoritative core count is ROBUSTWDM_THREADS when set (CI pins it so
// the waiver decision is explicit, not guessed from the container's cpuset),
// else support::hardware_threads().
//
// Writes BENCH_parallel_batch.json (override via --out <path>).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "rwa/approx_router.hpp"
#include "rwa/batch.hpp"
#include "rwa/parallel_batch.hpp"
#include "support/env.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"
#include "topology/network_builder.hpp"

namespace {

using namespace wdm;

// Thread-CPU time in ms, for the 1-thread bar only. Both sides of that bar
// run single-threaded identical code on the calling thread, so any genuine
// engine overhead shows up in CPU time — while scheduler slices stolen by a
// loaded host (which dominate wall-clock jitter on 1-core CI runners) do
// not. The throughput arms keep wall clock: parallelism is a wall-time win.
double thread_cpu_ms() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) * 1e3 +
           static_cast<double>(ts.tv_nsec) / 1e6;
  }
#endif
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::vector<rwa::BatchRequest> make_batch(int count, net::NodeId n,
                                          std::uint64_t seed) {
  support::Rng rng(seed);
  std::vector<rwa::BatchRequest> batch;
  for (int i = 0; i < count; ++i) {
    rwa::BatchRequest r;
    r.id = i;
    r.s = static_cast<net::NodeId>(rng.uniform_int(0, n - 1));
    r.t = r.s;
    while (r.t == r.s) {
      r.t = static_cast<net::NodeId>(rng.uniform_int(0, n - 1));
    }
    batch.push_back(r);
  }
  return batch;
}

/// Background reservations pushing the network into the contended regime:
/// batches that mostly *drop* are exactly where speculative provisioning
/// pays (consecutive drops validate against one snapshot), and exactly the
/// load level §4's routing is designed for.
void preload(net::WdmNetwork& net, double prob, std::uint64_t seed) {
  support::Rng rng(seed);
  for (graph::EdgeId e = 0; e < net.num_links(); ++e) {
    net.available(e).for_each([&](net::Wavelength l) {
      if (rng.uniform() < prob) net.reserve(e, l);
    });
  }
}

bool outcomes_identical(const rwa::BatchOutcome& a, const rwa::BatchOutcome& b,
                        const net::WdmNetwork& na, const net::WdmNetwork& nb) {
  if (a.accepted != b.accepted || a.dropped != b.dropped ||
      a.total_cost != b.total_cost ||
      a.final_network_load != b.final_network_load ||
      a.routes.size() != b.routes.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.routes.size(); ++i) {
    if (a.routes[i].has_value() != b.routes[i].has_value()) return false;
    if (!a.routes[i].has_value()) continue;
    if (!(a.routes[i]->primary.hops == b.routes[i]->primary.hops)) return false;
    if (!(a.routes[i]->backup.hops == b.routes[i]->backup.hops)) return false;
  }
  return na.usage_snapshot() == nb.usage_snapshot();
}

struct ArmResult {
  int threads = 0;
  double ms = 0.0;
  double best_round_ms = 0.0;
  double rps = 0.0;
  double speedup = 0.0;
  bool identical = true;
  rwa::ParallelBatchStats stats;
};

struct ScenarioResult {
  std::string scenario;
  int batch_size = 0;
  int rounds = 0;
  long long requests = 0;
  int serial_accepted = 0;
  int serial_dropped = 0;
  double serial_ms = 0.0;
  double serial_best_round_ms = 0.0;
  double serial_rps = 0.0;
  /// total(serial) / total(engine-1T) thread-CPU time over interleaved
  /// passes — the basis for the 1-thread bar.
  double one_thread_paired_speedup = 0.0;
  /// total(serial) / total(serial) over the same passes: an A/A control
  /// measuring the host's timing floor. Outside [0.98, 1/0.98] the 1T bar
  /// is unresolvable on this host and is waived loudly.
  double one_thread_aa_control = 0.0;
  std::vector<ArmResult> arms;
};

ScenarioResult run_scenario(const char* name, const net::WdmNetwork& base,
                            int batch_size, int rounds, std::uint64_t seed,
                            bool measure_one_thread_bar) {
  ScenarioResult sr;
  sr.scenario = name;
  sr.batch_size = batch_size;
  sr.rounds = rounds;
  sr.requests = static_cast<long long>(batch_size) * rounds;

  const auto batch = make_batch(batch_size, base.num_nodes(), seed);
  const rwa::ApproxDisjointRouter router;

  // Serial reference: per-round outcome on a fresh copy of the base network
  // (kept for the determinism diff), then the timed throughput loop.
  net::WdmNetwork ref_net = base;
  const rwa::BatchOutcome ref =
      rwa::provision_batch(ref_net, router, batch, rwa::BatchOrder::kArrival);
  sr.serial_accepted = ref.accepted;
  sr.serial_dropped = ref.dropped;

  {
    net::WdmNetwork net = base;
    double total = 0.0, best = 0.0;
    for (int r = 0; r < rounds; ++r) {
      support::Stopwatch sw;
      const rwa::BatchOutcome out = rwa::provision_batch(
          net, router, batch, rwa::BatchOrder::kArrival);
      rwa::release_batch(net, out);
      const double ms = sw.elapsed_ms();
      total += ms;
      if (r == 0 || ms < best) best = ms;
    }
    sr.serial_ms = total;
    sr.serial_best_round_ms = best;
    sr.serial_rps = bench::requests_per_second(sr.requests, sr.serial_ms);
  }

  for (int threads : {1, 2, 4, 8}) {
    ArmResult arm;
    arm.threads = threads;
    rwa::ParallelBatchOptions opt;
    opt.threads = threads;
    rwa::ParallelBatchEngine engine(opt);

    // Untimed determinism pass against the serial reference.
    {
      net::WdmNetwork net = base;
      const rwa::BatchOutcome out =
          engine.run(net, router, batch, rwa::BatchOrder::kArrival);
      arm.identical = outcomes_identical(ref, out, ref_net, net);
      rwa::release_batch(net, out);
    }

    engine.reset_stats();
    {
      net::WdmNetwork net = base;
      double total = 0.0, best = 0.0;
      for (int r = 0; r < rounds; ++r) {
        support::Stopwatch sw;
        const rwa::BatchOutcome out =
            engine.run(net, router, batch, rwa::BatchOrder::kArrival);
        rwa::release_batch(net, out);
        const double ms = sw.elapsed_ms();
        total += ms;
        if (r == 0 || ms < best) best = ms;
      }
      arm.ms = total;
      arm.best_round_ms = best;
    }
    arm.rps = bench::requests_per_second(sr.requests, arm.ms);
    arm.speedup = arm.ms > 0.0 ? sr.serial_ms / arm.ms : 0.0;
    arm.stats = engine.stats();
    sr.arms.push_back(arm);
  }

  // 1-thread overhead bar measurement, with a built-in A/A control.
  //
  // Three arms interleave per pass: serial (A), serial again (B), and the
  // 1T engine (E) — thread-CPU time, so preemption by a loaded host does
  // not count against either side, and the arm order rotates each pass so
  // periodic co-tenant interference cannot phase-lock onto one arm. The
  // reported speedup is total(A)/total(E); total(A)/total(B) is an A/A
  // control that measures the host's timing floor on *identical* code.
  // main() only declares a violation when the engine misses the bar while
  // the control sits inside the band: on a host whose A/A control itself
  // strays past 2%, no estimator can resolve the bar honestly (measured
  // here: min, median-of-pair-ratios, and totals all drift to ~0.97 A/A
  // on a busy 1-core container), so the bar is waived LOUDLY instead.
  // The pass count is fixed, not adaptive: every engine.run bumps the
  // rwa.parallel_batch.requests telemetry counter that the CI teldiff
  // gate pins, so the amount of work here must be deterministic.
  if (measure_one_thread_bar) {
    rwa::ParallelBatchOptions opt;
    opt.threads = 1;
    rwa::ParallelBatchEngine engine(opt);
    double tot[3] = {0.0, 0.0, 0.0};  // A, B, E
    const auto time_serial = [&](double& acc) {
      net::WdmNetwork net = base;
      const double start = thread_cpu_ms();
      const rwa::BatchOutcome out = rwa::provision_batch(
          net, router, batch, rwa::BatchOrder::kArrival);
      acc += thread_cpu_ms() - start;
      rwa::release_batch(net, out);
    };
    const auto time_engine = [&](double& acc) {
      net::WdmNetwork net = base;
      const double start = thread_cpu_ms();
      const rwa::BatchOutcome out =
          engine.run(net, router, batch, rwa::BatchOrder::kArrival);
      acc += thread_cpu_ms() - start;
      rwa::release_batch(net, out);
    };
    const int kTriples = 24;
    for (int k = 0; k < kTriples; ++k) {
      for (int slot = 0; slot < 3; ++slot) {
        const int arm = (slot + k) % 3;
        if (arm == 2) {
          time_engine(tot[2]);
        } else {
          time_serial(tot[arm]);
        }
      }
    }
    sr.one_thread_paired_speedup = tot[2] > 0.0 ? tot[0] / tot[2] : 0.0;
    sr.one_thread_aa_control = tot[1] > 0.0 ? tot[0] / tot[1] : 0.0;
  }
  return sr;
}

const ArmResult* find_arm(const ScenarioResult& sr, int threads) {
  for (const ArmResult& a : sr.arms) {
    if (a.threads == threads) return &a;
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  wdm::bench::TelemetryScope telemetry(argc, argv);
  const bool quick = wdm::bench::quick_mode(argc, argv);
  std::string out_path = "BENCH_parallel_batch.json";
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0) out_path = argv[i + 1];
  }
  wdm::bench::banner(
      "E17 — optimistic parallel batch provisioning",
      "Expected shape: the speculative engine tracks serial provision_batch "
      "bit-for-bit at every thread count (enforced, exit 3), and beats it by "
      ">= 2x at 4 threads on random60-w32 when >= 4 cores are available "
      "(enforced, exit 2). Conflict/retry rates quantify the optimism tax.");

  // ROBUSTWDM_THREADS is authoritative when set: the waiver decision must
  // follow the declared budget, not a guess from the container's cpuset
  // (hardware_threads() only caps by the env var, it never raises).
  const std::int64_t declared = support::env_int("ROBUSTWDM_THREADS", 0);
  const int cores = declared > 0 ? static_cast<int>(declared)
                                 : support::hardware_threads();
  const bool skip_bar = support::env_int("ROBUSTWDM_E17_SKIP_BAR", 0) != 0;
  const int rounds = quick ? 3 : 12;

  std::vector<ScenarioResult> results;
  {
    net::WdmNetwork nsf = topo::nsfnet_network(16, 0.5);
    preload(nsf, 0.55, 1001);
    results.push_back(
        run_scenario("nsfnet-w16", nsf, quick ? 120 : 240, rounds, 11,
                     /*measure_one_thread_bar=*/false));
  }
  {
    support::Rng rng(7);
    const topo::Topology t = topo::random_connected(60, 50, rng);
    topo::NetworkOptions nopt;
    nopt.num_wavelengths = 32;
    net::WdmNetwork big = topo::build_network(t, nopt, rng);
    preload(big, 0.93, 1002);
    results.push_back(
        run_scenario("random60-w32", big, quick ? 150 : 300, rounds, 21,
                     /*measure_one_thread_bar=*/true));
  }

  bool determinism_ok = true;
  wdm::support::TextTable table({"scenario", "threads", "ms", "requests/s",
                                 "speedup", "conflict rate", "spec hits",
                                 "fp hits", "retries", "fallbacks",
                                 "identical"});
  for (const ScenarioResult& sr : results) {
    table.add_row({sr.scenario, "serial",
                   wdm::support::TextTable::num(sr.serial_ms, 2),
                   wdm::support::TextTable::num(sr.serial_rps, 0), "1.00", "-",
                   "-", "-", "-", "-", "-"});
    for (const ArmResult& a : sr.arms) {
      determinism_ok = determinism_ok && a.identical;
      table.add_row({sr.scenario, wdm::support::TextTable::integer(a.threads),
                     wdm::support::TextTable::num(a.ms, 2),
                     wdm::support::TextTable::num(a.rps, 0),
                     wdm::support::TextTable::num(a.speedup, 2),
                     wdm::support::TextTable::num(a.stats.conflict_rate(), 3),
                     wdm::support::TextTable::num(a.stats.spec_hit_rate(), 3),
                     wdm::support::TextTable::num(
                         a.stats.footprint_hit_rate(), 3),
                     wdm::support::TextTable::integer(
                         static_cast<int>(a.stats.retries)),
                     wdm::support::TextTable::integer(
                         static_cast<int>(a.stats.serial_fallbacks)),
                     a.identical ? "yes" : "NO"});
    }
  }
  wdm::bench::print_table(table);

  const ArmResult* bar_arm = find_arm(results.back(), 4);
  const double bar_speedup = bar_arm ? bar_arm->speedup : 0.0;
  const bool bar_waived = skip_bar || cores < 4;
  const bool bar_met = bar_speedup >= 2.0;
  // The 1T arm delegates to the serial path, so any overhead beyond noise is
  // a regression in the short-circuit itself. Enforced regardless of cores,
  // on the interleaved thread-CPU-time measurement from run_scenario (see
  // comment there). A miss only counts as a violation when the A/A control
  // proves the host could have resolved it; otherwise the bar is waived
  // loudly, like the 4-thread bar on small hosts.
  const double one_t_speedup = results.back().one_thread_paired_speedup;
  const double one_t_aa = results.back().one_thread_aa_control;
  const bool one_t_ok = one_t_speedup >= 0.98;
  const bool one_t_waived =
      !one_t_ok && (one_t_aa < 0.98 || one_t_aa > 1.0 / 0.98);

  std::printf("usable cores: %d\n", cores);
  std::printf("determinism (all thread counts == serial): %s\n",
              determinism_ok ? "OK" : "VIOLATED");
  std::printf(
      "random60-w32 1-thread arm >= 0.98x serial (interleaved cpu time, "
      "A/A control %.3f): %.3fx — %s\n",
      one_t_aa, one_t_speedup,
      one_t_ok ? "OK"
               : (one_t_waived ? "WAIVED (host timing floor exceeds bar)"
                               : "VIOLATED"));
  if (bar_waived) {
    std::printf(
        "random60-w32 >= 2x @ 4 threads bar: %.2fx — WAIVED (%s)\n",
        bar_speedup, skip_bar ? "ROBUSTWDM_E17_SKIP_BAR" : "< 4 cores");
  } else {
    std::printf("random60-w32 >= 2x @ 4 threads bar: %.2fx — %s\n",
                bar_speedup, bar_met ? "MET" : "NOT MET");
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"experiment\": \"E17 parallel batch provisioning\",\n");
  std::fprintf(f, "  \"usable_cores\": %d,\n", cores);
  std::fprintf(f, "  \"determinism_ok\": %s,\n",
               determinism_ok ? "true" : "false");
  std::fprintf(f, "  \"bar_speedup_4t_random60\": %.3f,\n", bar_speedup);
  std::fprintf(f, "  \"bar_met\": %s,\n", bar_met ? "true" : "false");
  std::fprintf(f, "  \"bar_waived_insufficient_cores\": %s,\n",
               bar_waived ? "true" : "false");
  std::fprintf(f, "  \"one_thread_speedup_random60\": %.3f,\n", one_t_speedup);
  std::fprintf(f, "  \"one_thread_aa_control\": %.3f,\n", one_t_aa);
  std::fprintf(f, "  \"one_thread_bar_met\": %s,\n",
               one_t_ok ? "true" : "false");
  std::fprintf(f, "  \"one_thread_bar_waived_noisy_host\": %s,\n",
               one_t_waived ? "true" : "false");
  std::fprintf(f, "  \"scenarios\": [\n");
  for (std::size_t s = 0; s < results.size(); ++s) {
    const ScenarioResult& sr = results[s];
    std::fprintf(f,
                 "    {\"scenario\": \"%s\", \"batch_size\": %d, "
                 "\"rounds\": %d, \"serial_accepted\": %d, "
                 "\"serial_dropped\": %d, \"serial_ms\": %.3f, "
                 "\"serial_rps\": %.1f,\n     \"arms\": [\n",
                 sr.scenario.c_str(), sr.batch_size, sr.rounds,
                 sr.serial_accepted, sr.serial_dropped, sr.serial_ms,
                 sr.serial_rps);
    for (std::size_t i = 0; i < sr.arms.size(); ++i) {
      const ArmResult& a = sr.arms[i];
      std::fprintf(
          f,
          "      {\"threads\": %d, \"ms\": %.3f, \"rps\": %.1f, "
          "\"speedup\": %.3f, \"identical\": %s, \"conflict_rate\": %.4f, "
          "\"spec_hit_rate\": %.4f, \"footprint_hit_rate\": %.4f, "
          "\"runs\": %lld, \"serial_runs\": %lld, \"speculations\": %lld, "
          "\"footprint_hits\": %lld, \"conflicts\": %lld, "
          "\"spec_discarded\": %lld, \"retries\": %lld, "
          "\"commit_reroutes\": %lld, \"serial_fallbacks\": %lld, "
          "\"epochs\": %lld, \"snapshot_syncs\": %lld, "
          "\"snapshot_copies\": %lld}%s\n",
          a.threads, a.ms, a.rps, a.speedup, a.identical ? "true" : "false",
          a.stats.conflict_rate(), a.stats.spec_hit_rate(),
          a.stats.footprint_hit_rate(), a.stats.runs, a.stats.serial_runs,
          a.stats.speculations, a.stats.footprint_hits, a.stats.conflicts,
          a.stats.spec_discarded, a.stats.retries, a.stats.commit_reroutes,
          a.stats.serial_fallbacks, a.stats.epochs, a.stats.snapshot_syncs,
          a.stats.snapshot_copies, i + 1 < sr.arms.size() ? "," : "");
    }
    std::fprintf(f, "    ]}%s\n", s + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  if (!determinism_ok) return 3;
  if (!one_t_ok && !one_t_waived) return 5;
  if (!bar_waived && !bar_met) return 2;
  if (bar_waived || one_t_waived) return 4;
  return 0;
}
