// E22 — continental-scale routing hot path: cold vs warm request latency on
// 250/500/1000-node geo-grid and Waxman WANs.
//
// The PR-9 claim under test: with the CSR aux-graph arena, warm-start
// Suurballe trees, and the pooled allocation-free RouteScratch, a
// steady-state request's latency is governed by the size of its weight
// *diff* (how much residual state moved since the last request), not by
// topology size — so warm latency grows sublinearly in the routing problem
// size (stable-arena arc count) while the cold path (fresh router per
// request: arena construction, cold trees, every buffer allocated) tracks
// it linearly or worse.
//
// Arms: {geo-grid, waxman} × {250, 500, 1000} nodes. Quick mode drops W
// from 64 to 16 and shrinks the request count; the deterministic
// `rwa.scale.*` outcome counters it emits are gated against
// baselines/telemetry_scale_quick.json by teldiff in CI (timings are
// reported but never gated).
//
// Exit protocol: 0 = ok, 2 = sublinearity bar missed (full mode only;
// quick sizes are too small for a stable ratio on shared CI hardware).
// Writes BENCH_scale.json (override: --out <path>).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "rwa/approx_router.hpp"
#include "rwa/aux_graph.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/telemetry.hpp"
#include "support/timer.hpp"
#include "topology/network_builder.hpp"
#include "topology/topologies.hpp"

namespace {

using namespace wdm;

struct ArmSpec {
  const char* label;      // also the telemetry counter infix
  const char* family;     // "geo" | "waxman"
  int n;                  // node count
  int rows, cols;         // geo-grid shape (family == "geo")
};

constexpr ArmSpec kArms[] = {
    {"geo-250", "geo", 250, 10, 25},
    {"geo-500", "geo", 500, 20, 25},
    {"geo-1000", "geo", 1000, 25, 40},
    {"waxman-250", "waxman", 250, 0, 0},
    {"waxman-500", "waxman", 500, 0, 0},
    {"waxman-1000", "waxman", 1000, 0, 0},
};

struct ArmResult {
  std::string label;
  int n = 0;
  int links = 0;
  long long aux_arcs = 0;  // stable-arena universe size — the problem size
  int requests = 0;
  int found = 0;
  // Latency ladders in microseconds: [p50, p90, p99].
  std::vector<double> cold_us;
  std::vector<double> warm_us;
  double warm_mean_us = 0.0;
  double cold_mean_us = 0.0;
};

void churn(net::WdmNetwork& net, support::Rng& rng, int ops) {
  for (int i = 0; i < ops; ++i) {
    const auto e = static_cast<graph::EdgeId>(
        rng.index(static_cast<std::size_t>(net.num_links())));
    if (rng.bernoulli(0.5)) {
      const auto avail = net.available(e).to_vector();
      if (!avail.empty()) net.reserve(e, avail[rng.index(avail.size())]);
    } else {
      std::vector<net::Wavelength> used;
      net.installed(e).for_each([&](net::Wavelength l) {
        if (net.is_used(e, l)) used.push_back(l);
      });
      if (!used.empty()) net.release(e, used[rng.index(used.size())]);
    }
  }
}

ArmResult run_arm(const ArmSpec& spec, int wavelengths, int requests,
                  std::uint64_t seed) {
  support::Rng topo_rng(seed);
  const topo::Topology t =
      std::strcmp(spec.family, "geo") == 0
          ? topo::geo_grid(spec.rows, spec.cols, /*chord_p=*/0.3, topo_rng)
          : topo::waxman(spec.n, /*alpha=*/0.08, /*beta=*/0.12, topo_rng);
  topo::NetworkOptions nopt;
  nopt.num_wavelengths = wavelengths;
  nopt.cost_model = topo::CostModel::kLength;
  const net::WdmNetwork base = topo::build_network(t, nopt, topo_rng);

  ArmResult r;
  r.label = spec.label;
  r.n = spec.n;
  r.links = static_cast<int>(base.num_links());
  r.requests = requests;
  {
    // The routing-layer size of this topology: arcs in the stable-arena
    // universe graph (transit arcs grow with Σ deg², so Waxman arms are
    // far "bigger" than their node count suggests).
    rwa::AuxGraphBuilder sizer;
    rwa::AuxGraphOptions sopt;
    sopt.stable_arena = true;
    r.aux_arcs = sizer.build(base, 0, 1, sopt).g.num_edges();
  }

  // Identical query + churn streams for both passes. Sources come from a
  // small recurring pool (spread across the id space): a WAN's provisioning
  // requests originate at a handful of ingress points, and the steady-state
  // claim under test — repair beats rebuild — is about repeated work from
  // recurring sources. Destinations stay uniform.
  const auto n = static_cast<std::size_t>(base.num_nodes());
  const std::size_t pool = std::min<std::size_t>(8, n);
  std::vector<std::pair<net::NodeId, net::NodeId>> queries;
  {
    support::Rng qrng(seed + 1);
    for (int i = 0; i < requests; ++i) {
      const auto s =
          static_cast<net::NodeId>((qrng.index(pool) * n) / pool);
      const auto d = static_cast<net::NodeId>(
          (static_cast<std::size_t>(s) + 1 + qrng.index(n - 1)) % n);
      queries.emplace_back(s, d);
    }
  }

  std::vector<double> cold_lat, warm_lat;
  cold_lat.reserve(static_cast<std::size_t>(requests));
  warm_lat.reserve(static_cast<std::size_t>(requests));

  {
    // Cold pass: a fresh router per request — the pre-arena cost model
    // (structure build, cold round-1 tree, every scratch buffer allocated).
    // Cold requests cost milliseconds each, so a prefix of the stream is
    // plenty for a stable contrast p50.
    const int cold_n = std::min(requests, 120);
    net::WdmNetwork net = base;
    support::Rng crng(seed + 2);
    for (int i = 0; i < cold_n; ++i) {
      const auto& [s, d] = queries[static_cast<std::size_t>(i)];
      churn(net, crng, 4);
      const rwa::ApproxDisjointRouter cold_router(/*refine=*/false);
      support::Stopwatch sw;
      const rwa::RouteResult res = cold_router.route(net, s, d);
      cold_lat.push_back(sw.elapsed_us());
      (void)res;
    }
  }
  {
    // Warm pass: one persistent router, recycled result, identical streams.
    net::WdmNetwork net = base;
    support::Rng crng(seed + 2);
    const rwa::ApproxDisjointRouter router(/*refine=*/false);
    rwa::RouteResult out;
    // Untimed warmup sizes the arena and the per-source trees.
    for (int i = 0; i < std::min(requests, 8); ++i) {
      router.route_into(net, queries[static_cast<std::size_t>(i)].first,
                        queries[static_cast<std::size_t>(i)].second, &out,
                        nullptr);
    }
    for (const auto& [s, d] : queries) {
      churn(net, crng, 4);
      support::Stopwatch sw;
      router.route_into(net, s, d, &out, nullptr);
      warm_lat.push_back(sw.elapsed_us());
      if (out.found) ++r.found;
    }
  }

  // Deterministic outcome counters for the teldiff gate; timings stay out.
  // WDM_TEL_COUNT_DYN, not WDM_TEL_COUNT_N: the per-arm names are
  // runtime-built, and the static-handle macro would fold all six arms into
  // the first arm's counters (debug builds now abort on that misuse).
  {
    const std::string prefix = std::string("rwa.scale.") + spec.label;
    WDM_TEL_COUNT_DYN(prefix + ".requests", r.requests);
    WDM_TEL_COUNT_DYN(prefix + ".found", r.found);
    WDM_TEL_COUNT_DYN(prefix + ".links", r.links);
  }

  const std::vector<double> qs{0.5, 0.9, 0.99};
  r.cold_us = support::percentiles(cold_lat, qs);
  r.warm_us = support::percentiles(warm_lat, qs);
  r.cold_mean_us = support::mean_of(cold_lat);
  r.warm_mean_us = support::mean_of(warm_lat);
  return r;
}

/// 250-node-arm -> 1000-node-arm growth ratio of one family, over an
/// arbitrary per-arm metric (warm p50, cold p50, arena arcs, ...).
template <typename Metric>
double growth(const std::vector<ArmResult>& results, const char* fam,
              Metric metric) {
  double lo = 0.0, hi = 0.0;
  for (const ArmResult& r : results) {
    if (r.label == std::string(fam) + "-250") lo = metric(r);
    if (r.label == std::string(fam) + "-1000") hi = metric(r);
  }
  return lo > 0.0 ? hi / lo : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  wdm::bench::TelemetryScope telemetry(argc, argv);
  const bool quick = wdm::bench::quick_mode(argc, argv);
  std::string out_path = "BENCH_scale.json";
  const char* only = nullptr;  // run a single arm (profiling aid)
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0) out_path = argv[i + 1];
    if (std::strcmp(argv[i], "--only") == 0) only = argv[i + 1];
  }
  wdm::bench::banner(
      "E22 — continental-scale hot path (cold vs warm request latency)",
      "Expected shape: warm steady-state latency is set by the residual "
      "diff, not topology size — from 250 to 1000 nodes, warm p50 grows "
      "slower than the aux-arena arc count while cold tracks it.");

  const int W = quick ? 16 : 64;
  const int requests = quick ? 48 : 400;

  std::vector<ArmResult> results;
  for (std::size_t i = 0; i < std::size(kArms); ++i) {
    if (only != nullptr && std::strcmp(kArms[i].label, only) != 0) continue;
    results.push_back(
        run_arm(kArms[i], W, requests, 5000 + 31 * static_cast<int>(i)));
  }

  wdm::support::TextTable table(
      {"arm", "nodes", "links", "aux arcs", "found", "cold p50 us",
       "cold p99 us", "warm p50 us", "warm p90 us", "warm p99 us",
       "speedup p50"});
  for (const ArmResult& r : results) {
    table.add_row(
        {r.label, wdm::support::TextTable::integer(r.n),
         wdm::support::TextTable::integer(r.links),
         wdm::support::TextTable::integer(r.aux_arcs),
         wdm::support::TextTable::integer(r.found),
         wdm::support::TextTable::num(r.cold_us[0], 1),
         wdm::support::TextTable::num(r.cold_us[2], 1),
         wdm::support::TextTable::num(r.warm_us[0], 1),
         wdm::support::TextTable::num(r.warm_us[1], 1),
         wdm::support::TextTable::num(r.warm_us[2], 1),
         wdm::support::TextTable::num(
             r.warm_us[0] > 0.0 ? r.cold_us[0] / r.warm_us[0] : 0.0, 2)});
  }
  wdm::bench::print_table(table);

  // The bar: warm p50 must grow strictly slower than the routing problem
  // itself. "Topology size" is the stable-arena arc count, not the node
  // count — Waxman transit gadgets grow with Σ deg², so the 1000-node arm
  // is ~25x the 250-node arm even though the node ratio is 4x.
  const auto warm_p50 = [](const ArmResult& r) { return r.warm_us[0]; };
  const auto arcs = [](const ArmResult& r) {
    return static_cast<double>(r.aux_arcs);
  };
  const double geo_growth = growth(results, "geo", warm_p50);
  const double wax_growth = growth(results, "waxman", warm_p50);
  const double geo_arcs = growth(results, "geo", arcs);
  const double wax_arcs = growth(results, "waxman", arcs);
  const bool bar_met = geo_growth > 0.0 && wax_growth > 0.0 &&
                       geo_growth < geo_arcs && wax_growth < wax_arcs;
  std::printf(
      "growth 250 -> 1000 nodes (node-count ratio 4.00x):\n"
      "  geo    warm p50 %.2fx vs aux arcs %.2fx\n"
      "  waxman warm p50 %.2fx vs aux arcs %.2fx\n"
      "sublinearity bar (warm p50 growth < aux arc growth, both families): "
      "%s\n",
      geo_growth, geo_arcs, wax_growth, wax_arcs,
      bar_met ? "MET" : "NOT MET");
  wdm::bench::note(
      "cold = fresh router per request (arena construction + cold trees + "
      "all allocations); warm = persistent router, pooled scratch, "
      "warm-repaired trees. Quick mode: W=16, small request count — use "
      "the full run for publishable ratios.");

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"experiment\": \"E22 continental scale\",\n");
  std::fprintf(f, "  \"wavelengths\": %d,\n  \"requests_per_arm\": %d,\n", W,
               requests);
  std::fprintf(f, "  \"warm_p50_growth_geo\": %.3f,\n", geo_growth);
  std::fprintf(f, "  \"warm_p50_growth_waxman\": %.3f,\n", wax_growth);
  std::fprintf(f, "  \"aux_arc_growth_geo\": %.3f,\n", geo_arcs);
  std::fprintf(f, "  \"aux_arc_growth_waxman\": %.3f,\n", wax_arcs);
  std::fprintf(f, "  \"sublinear_bar_met\": %s,\n", bar_met ? "true" : "false");
  std::fprintf(f, "  \"arms\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ArmResult& r = results[i];
    std::fprintf(
        f,
        "    {\"arm\": \"%s\", \"nodes\": %d, \"links\": %d, "
        "\"aux_arcs\": %lld, \"requests\": %d, \"found\": %d, "
        "\"cold_us\": [%.1f, %.1f, %.1f], \"warm_us\": [%.1f, %.1f, %.1f], "
        "\"cold_mean_us\": %.1f, \"warm_mean_us\": %.1f}%s\n",
        r.label.c_str(), r.n, r.links, r.aux_arcs, r.requests, r.found,
        r.cold_us[0], r.cold_us[1], r.cold_us[2], r.warm_us[0], r.warm_us[1],
        r.warm_us[2], r.cold_mean_us, r.warm_mean_us,
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  if (!quick && only == nullptr && !bar_met) return 2;
  return 0;
}
