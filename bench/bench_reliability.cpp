// E20 — service availability under correlated SRLG failures.
//
// NSFNET with conduit-style SRLG annotations (each group bundles a few
// fibers that share a physical risk), correlated failure events drawn at
// rate srlg_failure_rate x p(g). Arms: the approx router under
// ProtectPolicy full / srlg / partial:0.25, plus the unprotected baseline.
// The claim: SRLG-disjoint protection converts correlated cuts from
// connection losses into switchovers, so its availability dominates the
// unprotected baseline and is at least competitive with edge-disjoint
// (full) protection, which can place both paths in one conduit.
//
// Writes BENCH_reliability.json (--out <path>). The sim.* workload
// counters emitted under --telemetry are deterministic for the committed
// seeds and gate in CI via teldiff against
// baselines/telemetry_reliability_quick.json.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "rwa/approx_router.hpp"
#include "rwa/baselines.hpp"
#include "sim/replicate.hpp"
#include "support/rng.hpp"
#include "topology/network_builder.hpp"

namespace {

using namespace wdm;

/// NSFNET with conduit-style SRLGs: consecutive directed fibers bundled in
/// groups of three with per-group failure probabilities cycling through
/// {0.4, 0.25, 0.1}. Deterministic — the teldiff baseline depends on it.
net::WdmNetwork annotated_nsfnet(int W) {
  net::WdmNetwork n = topo::nsfnet_network(W, 0.5);
  const double probs[] = {0.4, 0.25, 0.1};
  int g = 0;
  for (graph::EdgeId e = 0; e + 2 < n.num_links(); e += 3, ++g) {
    n.add_srlg({e, static_cast<graph::EdgeId>(e + 1),
                static_cast<graph::EdgeId>(e + 2)},
               probs[g % 3]);
  }
  return n;
}

struct ArmResult {
  std::string arm;
  sim::ReplicationSummary summary;
};

}  // namespace

int main(int argc, char** argv) {
  wdm::bench::TelemetryScope telemetry(argc, argv);
  const bool quick = wdm::bench::quick_mode(argc, argv);
  std::string out_path = "BENCH_reliability.json";
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0) out_path = argv[i + 1];
  }
  wdm::bench::banner(
      "E20 — availability under correlated SRLG failures",
      "Expected shape: on SRLG-annotated NSFNET under correlated group "
      "failures, SRLG-disjoint protection keeps availability above the "
      "unprotected baseline (full edge-disjoint protection may place both "
      "paths in one conduit and lose them together).");

  const int W = 8;
  const int replicas = quick ? 4 : 16;
  const double duration = quick ? 80.0 : 400.0;
  const net::WdmNetwork base = annotated_nsfnet(W);
  const topo::Topology t = topo::nsfnet();

  sim::SimOptions opt;
  opt.traffic.arrival_rate = 12.0;
  opt.traffic.mean_holding = 1.0;
  opt.duration = duration;
  opt.seed = 20;
  opt.failures.srlg_failure_rate = 0.05;
  opt.failures.duplex_failure_rate = 0.005;
  opt.failures.mean_repair = 2.0;
  opt.reverse_of = t.reverse_of;
  // Replicas share the global telemetry registry; their interleaved sim-time
  // clocks would violate the monotone-series schema. The teldiff gate reads
  // the (order-independent) sim.* counters, so sampling is off here.
  opt.series_interval = -1.0;

  struct Arm {
    const char* name;
    std::unique_ptr<rwa::Router> router;
  };
  std::vector<Arm> arms;
  arms.push_back({"full", std::make_unique<rwa::ApproxDisjointRouter>(
                              true, net::ProtectPolicy::full())});
  arms.push_back({"srlg", std::make_unique<rwa::ApproxDisjointRouter>(
                              true, net::ProtectPolicy::srlg())});
  arms.push_back({"partial:0.25",
                  std::make_unique<rwa::ApproxDisjointRouter>(
                      true, net::ProtectPolicy::partial(0.25))});
  arms.push_back({"unprotected", std::make_unique<rwa::UnprotectedRouter>()});

  std::vector<ArmResult> results;
  for (const Arm& arm : arms) {
    ArmResult r;
    r.arm = arm.name;
    r.summary = sim::replicate(base, *arm.router, opt, replicas);
    results.push_back(std::move(r));
  }

  wdm::support::TextTable table(
      {"policy", "blocking", "recovery", "availability", "avail ci95"});
  double avail_srlg = 0.0, avail_unprotected = 0.0;
  for (const ArmResult& r : results) {
    if (r.arm == "srlg") avail_srlg = r.summary.availability.mean;
    if (r.arm == "unprotected") {
      avail_unprotected = r.summary.availability.mean;
    }
    table.add_row({r.arm,
                   wdm::support::TextTable::num(r.summary.blocking.mean, 4),
                   wdm::support::TextTable::num(
                       r.summary.recovery_success.mean, 4),
                   wdm::support::TextTable::num(
                       r.summary.availability.mean, 5),
                   wdm::support::TextTable::num(
                       r.summary.availability.ci95, 5)});
  }
  wdm::bench::print_table(table);
  const bool bar_met = avail_srlg >= avail_unprotected;
  std::printf("SRLG availability >= unprotected acceptance bar: %s\n",
              bar_met ? "MET" : "NOT MET");

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"experiment\": \"E20 SRLG reliability\",\n");
  std::fprintf(f, "  \"replicas\": %d,\n  \"duration\": %.1f,\n", replicas,
               duration);
  std::fprintf(f, "  \"srlg_bar_met\": %s,\n", bar_met ? "true" : "false");
  std::fprintf(f, "  \"arms\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const sim::ReplicationSummary& s = results[i].summary;
    std::fprintf(f,
                 "    {\"policy\": \"%s\", \"blocking\": %.6f, "
                 "\"recovery\": %.6f, \"availability\": %.6f, "
                 "\"availability_ci95\": %.6f}%s\n",
                 results[i].arm.c_str(), s.blocking.mean,
                 s.recovery_success.mean, s.availability.mean,
                 s.availability.ci95, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return bar_met ? 0 : 2;
}
