// E11 — google-benchmark micro-suite for the primitives the routing stack
// is built on: Dijkstra heap backends (the Theorem 1 log-factor term),
// layered-graph construction + solve (the nW² term), auxiliary-graph
// construction, and Suurballe.
#include <benchmark/benchmark.h>

#include "graph/dijkstra.hpp"
#include "graph/suurballe.hpp"
#include "rwa/aux_graph.hpp"
#include "rwa/layered_graph.hpp"
#include "support/rng.hpp"
#include "test_util_bench.hpp"
#include "topology/network_builder.hpp"

namespace {

using namespace wdm;

std::pair<graph::Digraph, std::vector<double>> bench_graph(int n) {
  support::Rng rng(static_cast<std::uint64_t>(n));
  return test::random_digraph_bench(n, 6 * n, rng);
}

template <typename Heap>
void BM_DijkstraHeap(benchmark::State& state) {
  const auto [g, w] = bench_graph(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto tree = graph::dijkstra_with<Heap>(g, w, 0);
    benchmark::DoNotOptimize(tree.dist.data());
  }
  state.SetComplexityN(state.range(0));
}

void BM_DijkstraBinary(benchmark::State& s) { BM_DijkstraHeap<graph::BinaryHeap>(s); }
void BM_DijkstraQuad(benchmark::State& s) { BM_DijkstraHeap<graph::QuadHeap>(s); }
void BM_DijkstraPairing(benchmark::State& s) { BM_DijkstraHeap<graph::PairingHeap>(s); }

BENCHMARK(BM_DijkstraBinary)->Range(64, 4096)->Complexity();
BENCHMARK(BM_DijkstraQuad)->Range(64, 4096)->Complexity();
BENCHMARK(BM_DijkstraPairing)->Range(64, 4096)->Complexity();

void BM_Suurballe(benchmark::State& state) {
  const auto [g, w] = bench_graph(static_cast<int>(state.range(0)));
  const graph::NodeId t = g.num_nodes() - 1;
  for (auto _ : state) {
    auto pair = graph::suurballe(g, w, 0, t);
    benchmark::DoNotOptimize(&pair);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Suurballe)->Range(64, 4096)->Complexity();

net::WdmNetwork micro_network(int W) {
  support::Rng rng(5);
  topo::NetworkOptions opt;
  opt.num_wavelengths = W;
  return topo::build_network(topo::nsfnet(), opt, rng);
}

void BM_LayeredBuild(benchmark::State& state) {
  const net::WdmNetwork n = micro_network(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto lg = rwa::LayeredGraph::build(n, 0, 13);
    benchmark::DoNotOptimize(&lg);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LayeredBuild)->RangeMultiplier(2)->Range(2, 32)->Complexity();

void BM_OptimalSemilightpath(benchmark::State& state) {
  const net::WdmNetwork n = micro_network(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto p = rwa::optimal_semilightpath(n, 0, 13);
    benchmark::DoNotOptimize(&p);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_OptimalSemilightpath)->RangeMultiplier(2)->Range(2, 32)->Complexity();

void BM_AuxGraphBuild(benchmark::State& state) {
  const net::WdmNetwork n = micro_network(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto aux = rwa::build_aux_graph(n, 0, 13);
    benchmark::DoNotOptimize(&aux);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_AuxGraphBuild)->RangeMultiplier(2)->Range(2, 32)->Complexity();

void BM_AuxGraphLoadWeighted(benchmark::State& state) {
  net::WdmNetwork n = micro_network(8);
  support::Rng rng(11);
  for (graph::EdgeId e = 0; e < n.num_links(); ++e) {
    n.available(e).for_each([&](net::Wavelength l) {
      if (rng.bernoulli(0.4)) n.reserve(e, l);
    });
  }
  rwa::AuxGraphOptions opt;
  opt.weighting = rwa::AuxWeighting::kLoadExponential;
  opt.theta = 0.7;
  for (auto _ : state) {
    auto aux = rwa::build_aux_graph(n, 0, 13, opt);
    benchmark::DoNotOptimize(&aux);
  }
}
BENCHMARK(BM_AuxGraphLoadWeighted);

}  // namespace
