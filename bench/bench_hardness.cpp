// E4 — Lemma 1: the conversion-free two-wavelength case is NP-hard (via the
// two-min-cost-disjoint-paths problem of Li et al.). Polynomial algorithms
// shouldn't exist; we measure how the exact solver's enumeration effort
// explodes on Lemma-1-style instances as size grows, against the flat cost
// of the polynomial §3.3 approximation on the same instances.
//
// Instance family: no conversion anywhere, two wavelengths, per-link
// availability drawn from the three Lemma 1 weight classes — (0,0) both
// wavelengths, (1,0) only λ2, (0,1) only λ1 — which forces the exact solver
// to reconcile global wavelength feasibility with edge-disjointness.
#include <cstdio>

#include "bench_common.hpp"
#include "rwa/approx_router.hpp"
#include "rwa/exact_router.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/timer.hpp"
#include "topology/network_builder.hpp"

namespace {

using namespace wdm;

net::WdmNetwork lemma1_instance(int n, std::uint64_t seed) {
  support::Rng rng(seed);
  const topo::Topology t = topo::random_connected(n, n, rng);
  net::WdmNetwork network(0, 2);
  for (graph::NodeId v = 0; v < t.g.num_nodes(); ++v) {
    network.add_node(net::ConversionTable::none(2));
  }
  for (graph::EdgeId e = 0; e < t.g.num_edges(); ++e) {
    net::WavelengthSet inst;
    switch (rng.uniform_int(0, 2)) {
      case 0: inst = net::WavelengthSet::all(2); break;   // class (0,0)
      case 1: inst.insert(1); break;                      // class (1,0)
      default: inst.insert(0); break;                     // class (0,1)
    }
    network.add_link(t.g.tail(e), t.g.head(e), inst, 1.0);
  }
  return network;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = wdm::bench::quick_mode(argc, argv);
  const int trials = quick ? 10 : 60;
  wdm::bench::banner(
      "E4 / Lemma 1 — exact-search effort on the NP-hard core",
      "Expected shape: exact enumeration effort (candidates, time) grows "
      "rapidly with n on conversion-free 2-wavelength instances, while the "
      "polynomial approximation stays flat — and may fail to find pairs the "
      "exact search proves exist (the price of the G' relaxation without "
      "full conversion).");

  wdm::support::TextTable table({"n", "instances", "exact-found",
                                 "mean candidates", "max candidates",
                                 "exact mean us", "approx mean us",
                                 "approx found"});
  for (int n : quick ? std::vector<int>{6, 8, 10}
                     : std::vector<int>{6, 8, 10, 12, 14, 16}) {
    support::RunningStats cand, te, ta;
    long max_cand = 0;
    int exact_found = 0, approx_found = 0;
    for (int trial = 0; trial < trials; ++trial) {
      net::WdmNetwork network = lemma1_instance(
          n, static_cast<std::uint64_t>(n) * 100003 + trial);
      const auto t = static_cast<net::NodeId>(n - 1);
      support::Stopwatch sw;
      const rwa::ExactResult ex = rwa::exact_disjoint_pair(network, 0, t);
      te.add(sw.elapsed_us());
      cand.add(static_cast<double>(ex.candidates_examined));
      max_cand = std::max(max_cand, ex.candidates_examined);
      exact_found += ex.result.found;

      sw.reset();
      const rwa::RouteResult ap =
          rwa::ApproxDisjointRouter().route(network, 0, t);
      ta.add(sw.elapsed_us());
      approx_found += ap.found;
    }
    table.add_row({wdm::support::TextTable::integer(n),
                   wdm::support::TextTable::integer(trials),
                   wdm::support::TextTable::integer(exact_found),
                   wdm::support::TextTable::num(cand.mean(), 1),
                   wdm::support::TextTable::integer(max_cand),
                   wdm::support::TextTable::num(te.mean(), 1),
                   wdm::support::TextTable::num(ta.mean(), 1),
                   wdm::support::TextTable::integer(approx_found)});
  }
  wdm::bench::print_table(table);
  wdm::bench::note(
      "Without conversion the auxiliary graph's transit arcs only certify "
      "pairwise wavelength overlap, so approx can block on instances where "
      "a pair exists; Lemma 1 says no polynomial algorithm closes this gap "
      "unless P=NP.");
  return 0;
}
