// E3 — Theorem 1: the approximate algorithm runs in
// O(nd + nW² + m log n + nW log(nW)) time. We time the full §3.3 pipeline
// (auxiliary graph + Suurballe + 2× layered-graph refinement) across sweeps
// of n (Waxman topologies, fixed density) and W (fixed topology), reporting
// per-query times; the per-query cost should grow near-linearly in n at
// fixed degree and near-quadratically in W.
#include <cstdio>

#include "bench_common.hpp"
#include "rwa/approx_router.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/timer.hpp"
#include "topology/network_builder.hpp"

namespace {

using namespace wdm;

support::RunningStats time_queries(const net::WdmNetwork& network,
                                   int queries, std::uint64_t seed) {
  support::Rng rng(seed);
  rwa::ApproxDisjointRouter router;
  support::RunningStats us;
  const auto n = static_cast<std::int64_t>(network.num_nodes());
  for (int q = 0; q < queries; ++q) {
    const auto s = static_cast<net::NodeId>(rng.uniform_int(0, n - 1));
    auto t = s;
    while (t == s) t = static_cast<net::NodeId>(rng.uniform_int(0, n - 1));
    support::Stopwatch sw;
    (void)router.route(network, s, t);
    us.add(sw.elapsed_us());
  }
  return us;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = wdm::bench::quick_mode(argc, argv);
  const int queries = quick ? 10 : 60;
  wdm::bench::banner(
      "E3 / Theorem 1 — runtime scaling of the §3.3 approximate algorithm",
      "Expected shape: near-linear growth in n at fixed average degree and "
      "W; superlinear (≈quadratic) growth in W at fixed topology from the "
      "nW² conversion-arc term.");

  {
    wdm::support::TextTable table(
        {"n", "links", "W", "mean us/query", "p-ish max us", "us/(n)"});
    for (int n : quick ? std::vector<int>{25, 50, 100}
                       : std::vector<int>{25, 50, 100, 200, 400}) {
      support::Rng rng(static_cast<std::uint64_t>(n) * 31 + 5);
      // Fixed average degree (~6 directed) so the sweep isolates n.
      const topo::Topology t = topo::random_connected(n, 2 * n, rng);
      topo::NetworkOptions opt;
      opt.num_wavelengths = 8;
      opt.cost_model = topo::CostModel::kLength;
      net::WdmNetwork network = topo::build_network(t, opt, rng);
      const auto stats =
          time_queries(network, queries, static_cast<std::uint64_t>(n));
      table.add_row({wdm::support::TextTable::integer(n),
                     wdm::support::TextTable::integer(network.num_links()),
                     "8", wdm::support::TextTable::num(stats.mean(), 1),
                     wdm::support::TextTable::num(stats.max(), 1),
                     wdm::support::TextTable::num(
                         stats.mean() / static_cast<double>(n), 3)});
    }
    wdm::bench::print_table(table);
  }

  {
    wdm::support::TextTable table(
        {"topology", "W", "mean us/query", "us/W^2"});
    for (int W : quick ? std::vector<int>{4, 8, 16}
                       : std::vector<int>{2, 4, 8, 16, 32}) {
      support::Rng rng(99);
      topo::NetworkOptions opt;
      opt.num_wavelengths = W;
      net::WdmNetwork network =
          topo::build_network(topo::nsfnet(), opt, rng);
      const auto stats =
          time_queries(network, queries, static_cast<std::uint64_t>(W) + 77);
      table.add_row(
          {"nsfnet14", wdm::support::TextTable::integer(W),
           wdm::support::TextTable::num(stats.mean(), 1),
           wdm::support::TextTable::num(
               stats.mean() / (static_cast<double>(W) * W), 3)});
    }
    wdm::bench::print_table(table);
  }

  {
    wdm::support::TextTable table({"degree-regime", "n", "links",
                                   "mean us/query"});
    for (const auto& [label, extra] :
         std::vector<std::pair<const char*, int>>{
             {"sparse (tree+n/4)", 60 / 4},
             {"medium (tree+n)", 60},
             {"dense (tree+3n)", 180}}) {
      support::Rng rng(7);
      const topo::Topology t = topo::random_connected(60, extra, rng);
      topo::NetworkOptions opt;
      opt.num_wavelengths = 8;
      net::WdmNetwork network = topo::build_network(t, opt, rng);
      const auto stats = time_queries(network, queries, 11);
      table.add_row({label, "60",
                     wdm::support::TextTable::integer(network.num_links()),
                     wdm::support::TextTable::num(stats.mean(), 1)});
    }
    wdm::bench::print_table(table);
  }
  return 0;
}
