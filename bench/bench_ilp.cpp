// E9 — §3.1: the integer program is exact but expensive; the §3.3 reduction
// exists because of that. We solve the IP (Eqs. 3–21, in-tree simplex +
// branch & bound), the enumeration exact solver, and the approximation on
// the same tiny instances, reporting agreement and time.
#include <cstdio>

#include "bench_common.hpp"
#include "rwa/approx_router.hpp"
#include "rwa/exact_router.hpp"
#include "rwa/ilp_router.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/timer.hpp"
#include "topology/network_builder.hpp"

namespace {

using namespace wdm;

}  // namespace

int main(int argc, char** argv) {
  const bool quick = wdm::bench::quick_mode(argc, argv);
  const int trials = quick ? 5 : 25;
  wdm::bench::banner(
      "E9 / §3.1 — the exact IP vs combinatorial exact vs approximation",
      "Expected shape: IP and enumeration agree on cost everywhere (both "
      "exact); IP time and B&B nodes grow much faster than either "
      "alternative — the paper's case for the §3.3 reduction.");

  wdm::support::TextTable table(
      {"n", "W", "agree", "mean IP vars", "mean B&B nodes", "ip ms",
       "enum ms", "approx ms", "mean approx/opt"});
  for (const auto& [n, W] : std::vector<std::pair<int, int>>{
           {5, 2}, {6, 2}, {6, 3}, {7, 2}}) {
    int agree = 0, compared = 0;
    support::RunningStats vars, nodes, tip, tenum, tapprox, ratio;
    for (int trial = 0; trial < trials; ++trial) {
      support::Rng rng(static_cast<std::uint64_t>(n) * 7919 +
                       static_cast<std::uint64_t>(W) * 101 + trial);
      topo::NetworkOptions opt;
      opt.num_wavelengths = W;
      opt.cost_model = topo::CostModel::kRandomPerLink;
      opt.conversion_model = topo::ConversionModel::kFullUniform;
      opt.conversion_cost = 0.5;
      opt.install_probability = 0.8;
      const topo::Topology t = topo::random_connected(n, n / 2 + 1, rng);
      net::WdmNetwork network = topo::build_network(t, opt, rng);
      const auto dst = static_cast<net::NodeId>(n - 1);

      support::Stopwatch sw;
      const rwa::IlpRouteResult ip = rwa::ilp_disjoint_pair(network, 0, dst);
      tip.add(sw.elapsed_ms());
      sw.reset();
      const rwa::ExactResult en = rwa::exact_disjoint_pair(network, 0, dst);
      tenum.add(sw.elapsed_ms());
      sw.reset();
      const rwa::RouteResult ap =
          rwa::ApproxDisjointRouter().route(network, 0, dst);
      tapprox.add(sw.elapsed_ms());

      vars.add(ip.num_variables);
      nodes.add(static_cast<double>(ip.nodes_explored));
      if (ip.result.found != en.result.found) continue;
      ++compared;
      if (!ip.result.found ||
          std::abs(ip.result.total_cost(network) -
                   en.result.total_cost(network)) < 1e-6) {
        ++agree;
      }
      if (en.result.found && ap.found) {
        ratio.add(ap.total_cost(network) / en.result.total_cost(network));
      }
    }
    table.add_row(
        {wdm::support::TextTable::integer(n),
         wdm::support::TextTable::integer(W),
         wdm::support::TextTable::integer(agree) + "/" +
             wdm::support::TextTable::integer(compared),
         wdm::support::TextTable::num(vars.mean(), 0),
         wdm::support::TextTable::num(nodes.mean(), 1),
         wdm::support::TextTable::num(tip.mean(), 2),
         wdm::support::TextTable::num(tenum.mean(), 2),
         wdm::support::TextTable::num(tapprox.mean(), 2),
         wdm::support::TextTable::num(ratio.mean(), 4)});
  }
  wdm::bench::print_table(table);
  return 0;
}
