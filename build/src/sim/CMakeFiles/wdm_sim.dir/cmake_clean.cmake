file(REMOVE_RECURSE
  "CMakeFiles/wdm_sim.dir/replicate.cpp.o"
  "CMakeFiles/wdm_sim.dir/replicate.cpp.o.d"
  "CMakeFiles/wdm_sim.dir/simulator.cpp.o"
  "CMakeFiles/wdm_sim.dir/simulator.cpp.o.d"
  "libwdm_sim.a"
  "libwdm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wdm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
