# Empty dependencies file for wdm_sim.
# This may be replaced when dependencies are built.
