file(REMOVE_RECURSE
  "libwdm_sim.a"
)
