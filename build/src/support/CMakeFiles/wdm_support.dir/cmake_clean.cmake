file(REMOVE_RECURSE
  "CMakeFiles/wdm_support.dir/rng.cpp.o"
  "CMakeFiles/wdm_support.dir/rng.cpp.o.d"
  "CMakeFiles/wdm_support.dir/stats.cpp.o"
  "CMakeFiles/wdm_support.dir/stats.cpp.o.d"
  "CMakeFiles/wdm_support.dir/table.cpp.o"
  "CMakeFiles/wdm_support.dir/table.cpp.o.d"
  "libwdm_support.a"
  "libwdm_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wdm_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
