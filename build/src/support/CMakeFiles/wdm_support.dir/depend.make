# Empty dependencies file for wdm_support.
# This may be replaced when dependencies are built.
