file(REMOVE_RECURSE
  "libwdm_support.a"
)
