file(REMOVE_RECURSE
  "libwdm_rwa.a"
)
