file(REMOVE_RECURSE
  "CMakeFiles/wdm_rwa.dir/approx_router.cpp.o"
  "CMakeFiles/wdm_rwa.dir/approx_router.cpp.o.d"
  "CMakeFiles/wdm_rwa.dir/aux_graph.cpp.o"
  "CMakeFiles/wdm_rwa.dir/aux_graph.cpp.o.d"
  "CMakeFiles/wdm_rwa.dir/baselines.cpp.o"
  "CMakeFiles/wdm_rwa.dir/baselines.cpp.o.d"
  "CMakeFiles/wdm_rwa.dir/batch.cpp.o"
  "CMakeFiles/wdm_rwa.dir/batch.cpp.o.d"
  "CMakeFiles/wdm_rwa.dir/exact_router.cpp.o"
  "CMakeFiles/wdm_rwa.dir/exact_router.cpp.o.d"
  "CMakeFiles/wdm_rwa.dir/ilp_router.cpp.o"
  "CMakeFiles/wdm_rwa.dir/ilp_router.cpp.o.d"
  "CMakeFiles/wdm_rwa.dir/layered_graph.cpp.o"
  "CMakeFiles/wdm_rwa.dir/layered_graph.cpp.o.d"
  "CMakeFiles/wdm_rwa.dir/loadcost_router.cpp.o"
  "CMakeFiles/wdm_rwa.dir/loadcost_router.cpp.o.d"
  "CMakeFiles/wdm_rwa.dir/mincog.cpp.o"
  "CMakeFiles/wdm_rwa.dir/mincog.cpp.o.d"
  "CMakeFiles/wdm_rwa.dir/node_disjoint_router.cpp.o"
  "CMakeFiles/wdm_rwa.dir/node_disjoint_router.cpp.o.d"
  "CMakeFiles/wdm_rwa.dir/protectability.cpp.o"
  "CMakeFiles/wdm_rwa.dir/protectability.cpp.o.d"
  "CMakeFiles/wdm_rwa.dir/shared_backup.cpp.o"
  "CMakeFiles/wdm_rwa.dir/shared_backup.cpp.o.d"
  "CMakeFiles/wdm_rwa.dir/wavelength_assignment.cpp.o"
  "CMakeFiles/wdm_rwa.dir/wavelength_assignment.cpp.o.d"
  "libwdm_rwa.a"
  "libwdm_rwa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wdm_rwa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
