
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rwa/approx_router.cpp" "src/rwa/CMakeFiles/wdm_rwa.dir/approx_router.cpp.o" "gcc" "src/rwa/CMakeFiles/wdm_rwa.dir/approx_router.cpp.o.d"
  "/root/repo/src/rwa/aux_graph.cpp" "src/rwa/CMakeFiles/wdm_rwa.dir/aux_graph.cpp.o" "gcc" "src/rwa/CMakeFiles/wdm_rwa.dir/aux_graph.cpp.o.d"
  "/root/repo/src/rwa/baselines.cpp" "src/rwa/CMakeFiles/wdm_rwa.dir/baselines.cpp.o" "gcc" "src/rwa/CMakeFiles/wdm_rwa.dir/baselines.cpp.o.d"
  "/root/repo/src/rwa/batch.cpp" "src/rwa/CMakeFiles/wdm_rwa.dir/batch.cpp.o" "gcc" "src/rwa/CMakeFiles/wdm_rwa.dir/batch.cpp.o.d"
  "/root/repo/src/rwa/exact_router.cpp" "src/rwa/CMakeFiles/wdm_rwa.dir/exact_router.cpp.o" "gcc" "src/rwa/CMakeFiles/wdm_rwa.dir/exact_router.cpp.o.d"
  "/root/repo/src/rwa/ilp_router.cpp" "src/rwa/CMakeFiles/wdm_rwa.dir/ilp_router.cpp.o" "gcc" "src/rwa/CMakeFiles/wdm_rwa.dir/ilp_router.cpp.o.d"
  "/root/repo/src/rwa/layered_graph.cpp" "src/rwa/CMakeFiles/wdm_rwa.dir/layered_graph.cpp.o" "gcc" "src/rwa/CMakeFiles/wdm_rwa.dir/layered_graph.cpp.o.d"
  "/root/repo/src/rwa/loadcost_router.cpp" "src/rwa/CMakeFiles/wdm_rwa.dir/loadcost_router.cpp.o" "gcc" "src/rwa/CMakeFiles/wdm_rwa.dir/loadcost_router.cpp.o.d"
  "/root/repo/src/rwa/mincog.cpp" "src/rwa/CMakeFiles/wdm_rwa.dir/mincog.cpp.o" "gcc" "src/rwa/CMakeFiles/wdm_rwa.dir/mincog.cpp.o.d"
  "/root/repo/src/rwa/node_disjoint_router.cpp" "src/rwa/CMakeFiles/wdm_rwa.dir/node_disjoint_router.cpp.o" "gcc" "src/rwa/CMakeFiles/wdm_rwa.dir/node_disjoint_router.cpp.o.d"
  "/root/repo/src/rwa/protectability.cpp" "src/rwa/CMakeFiles/wdm_rwa.dir/protectability.cpp.o" "gcc" "src/rwa/CMakeFiles/wdm_rwa.dir/protectability.cpp.o.d"
  "/root/repo/src/rwa/shared_backup.cpp" "src/rwa/CMakeFiles/wdm_rwa.dir/shared_backup.cpp.o" "gcc" "src/rwa/CMakeFiles/wdm_rwa.dir/shared_backup.cpp.o.d"
  "/root/repo/src/rwa/wavelength_assignment.cpp" "src/rwa/CMakeFiles/wdm_rwa.dir/wavelength_assignment.cpp.o" "gcc" "src/rwa/CMakeFiles/wdm_rwa.dir/wavelength_assignment.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/wdm/CMakeFiles/wdm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/wdm_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/ilp/CMakeFiles/wdm_ilp.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/wdm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
