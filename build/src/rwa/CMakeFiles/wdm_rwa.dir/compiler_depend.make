# Empty compiler generated dependencies file for wdm_rwa.
# This may be replaced when dependencies are built.
