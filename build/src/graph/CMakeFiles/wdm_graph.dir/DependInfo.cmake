
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/bellman_ford.cpp" "src/graph/CMakeFiles/wdm_graph.dir/bellman_ford.cpp.o" "gcc" "src/graph/CMakeFiles/wdm_graph.dir/bellman_ford.cpp.o.d"
  "/root/repo/src/graph/bridges.cpp" "src/graph/CMakeFiles/wdm_graph.dir/bridges.cpp.o" "gcc" "src/graph/CMakeFiles/wdm_graph.dir/bridges.cpp.o.d"
  "/root/repo/src/graph/digraph.cpp" "src/graph/CMakeFiles/wdm_graph.dir/digraph.cpp.o" "gcc" "src/graph/CMakeFiles/wdm_graph.dir/digraph.cpp.o.d"
  "/root/repo/src/graph/dijkstra.cpp" "src/graph/CMakeFiles/wdm_graph.dir/dijkstra.cpp.o" "gcc" "src/graph/CMakeFiles/wdm_graph.dir/dijkstra.cpp.o.d"
  "/root/repo/src/graph/dot.cpp" "src/graph/CMakeFiles/wdm_graph.dir/dot.cpp.o" "gcc" "src/graph/CMakeFiles/wdm_graph.dir/dot.cpp.o.d"
  "/root/repo/src/graph/maxflow.cpp" "src/graph/CMakeFiles/wdm_graph.dir/maxflow.cpp.o" "gcc" "src/graph/CMakeFiles/wdm_graph.dir/maxflow.cpp.o.d"
  "/root/repo/src/graph/mincostflow.cpp" "src/graph/CMakeFiles/wdm_graph.dir/mincostflow.cpp.o" "gcc" "src/graph/CMakeFiles/wdm_graph.dir/mincostflow.cpp.o.d"
  "/root/repo/src/graph/path.cpp" "src/graph/CMakeFiles/wdm_graph.dir/path.cpp.o" "gcc" "src/graph/CMakeFiles/wdm_graph.dir/path.cpp.o.d"
  "/root/repo/src/graph/suurballe.cpp" "src/graph/CMakeFiles/wdm_graph.dir/suurballe.cpp.o" "gcc" "src/graph/CMakeFiles/wdm_graph.dir/suurballe.cpp.o.d"
  "/root/repo/src/graph/yen.cpp" "src/graph/CMakeFiles/wdm_graph.dir/yen.cpp.o" "gcc" "src/graph/CMakeFiles/wdm_graph.dir/yen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/wdm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
