file(REMOVE_RECURSE
  "CMakeFiles/wdm_graph.dir/bellman_ford.cpp.o"
  "CMakeFiles/wdm_graph.dir/bellman_ford.cpp.o.d"
  "CMakeFiles/wdm_graph.dir/bridges.cpp.o"
  "CMakeFiles/wdm_graph.dir/bridges.cpp.o.d"
  "CMakeFiles/wdm_graph.dir/digraph.cpp.o"
  "CMakeFiles/wdm_graph.dir/digraph.cpp.o.d"
  "CMakeFiles/wdm_graph.dir/dijkstra.cpp.o"
  "CMakeFiles/wdm_graph.dir/dijkstra.cpp.o.d"
  "CMakeFiles/wdm_graph.dir/dot.cpp.o"
  "CMakeFiles/wdm_graph.dir/dot.cpp.o.d"
  "CMakeFiles/wdm_graph.dir/maxflow.cpp.o"
  "CMakeFiles/wdm_graph.dir/maxflow.cpp.o.d"
  "CMakeFiles/wdm_graph.dir/mincostflow.cpp.o"
  "CMakeFiles/wdm_graph.dir/mincostflow.cpp.o.d"
  "CMakeFiles/wdm_graph.dir/path.cpp.o"
  "CMakeFiles/wdm_graph.dir/path.cpp.o.d"
  "CMakeFiles/wdm_graph.dir/suurballe.cpp.o"
  "CMakeFiles/wdm_graph.dir/suurballe.cpp.o.d"
  "CMakeFiles/wdm_graph.dir/yen.cpp.o"
  "CMakeFiles/wdm_graph.dir/yen.cpp.o.d"
  "libwdm_graph.a"
  "libwdm_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wdm_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
