file(REMOVE_RECURSE
  "libwdm_graph.a"
)
