# Empty compiler generated dependencies file for wdm_graph.
# This may be replaced when dependencies are built.
