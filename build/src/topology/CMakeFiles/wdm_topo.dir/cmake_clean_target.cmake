file(REMOVE_RECURSE
  "libwdm_topo.a"
)
