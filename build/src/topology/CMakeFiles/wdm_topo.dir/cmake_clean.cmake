file(REMOVE_RECURSE
  "CMakeFiles/wdm_topo.dir/network_builder.cpp.o"
  "CMakeFiles/wdm_topo.dir/network_builder.cpp.o.d"
  "CMakeFiles/wdm_topo.dir/topologies.cpp.o"
  "CMakeFiles/wdm_topo.dir/topologies.cpp.o.d"
  "libwdm_topo.a"
  "libwdm_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wdm_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
