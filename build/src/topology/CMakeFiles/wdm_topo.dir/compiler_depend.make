# Empty compiler generated dependencies file for wdm_topo.
# This may be replaced when dependencies are built.
