
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/network_builder.cpp" "src/topology/CMakeFiles/wdm_topo.dir/network_builder.cpp.o" "gcc" "src/topology/CMakeFiles/wdm_topo.dir/network_builder.cpp.o.d"
  "/root/repo/src/topology/topologies.cpp" "src/topology/CMakeFiles/wdm_topo.dir/topologies.cpp.o" "gcc" "src/topology/CMakeFiles/wdm_topo.dir/topologies.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/wdm/CMakeFiles/wdm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/wdm_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/wdm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
