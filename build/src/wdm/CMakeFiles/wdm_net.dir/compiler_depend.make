# Empty compiler generated dependencies file for wdm_net.
# This may be replaced when dependencies are built.
