
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wdm/conversion.cpp" "src/wdm/CMakeFiles/wdm_net.dir/conversion.cpp.o" "gcc" "src/wdm/CMakeFiles/wdm_net.dir/conversion.cpp.o.d"
  "/root/repo/src/wdm/io.cpp" "src/wdm/CMakeFiles/wdm_net.dir/io.cpp.o" "gcc" "src/wdm/CMakeFiles/wdm_net.dir/io.cpp.o.d"
  "/root/repo/src/wdm/network.cpp" "src/wdm/CMakeFiles/wdm_net.dir/network.cpp.o" "gcc" "src/wdm/CMakeFiles/wdm_net.dir/network.cpp.o.d"
  "/root/repo/src/wdm/semilightpath.cpp" "src/wdm/CMakeFiles/wdm_net.dir/semilightpath.cpp.o" "gcc" "src/wdm/CMakeFiles/wdm_net.dir/semilightpath.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/wdm_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/wdm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
