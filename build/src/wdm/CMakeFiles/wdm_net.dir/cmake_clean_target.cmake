file(REMOVE_RECURSE
  "libwdm_net.a"
)
