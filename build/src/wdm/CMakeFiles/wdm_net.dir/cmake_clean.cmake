file(REMOVE_RECURSE
  "CMakeFiles/wdm_net.dir/conversion.cpp.o"
  "CMakeFiles/wdm_net.dir/conversion.cpp.o.d"
  "CMakeFiles/wdm_net.dir/io.cpp.o"
  "CMakeFiles/wdm_net.dir/io.cpp.o.d"
  "CMakeFiles/wdm_net.dir/network.cpp.o"
  "CMakeFiles/wdm_net.dir/network.cpp.o.d"
  "CMakeFiles/wdm_net.dir/semilightpath.cpp.o"
  "CMakeFiles/wdm_net.dir/semilightpath.cpp.o.d"
  "libwdm_net.a"
  "libwdm_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wdm_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
