file(REMOVE_RECURSE
  "CMakeFiles/wdm_ilp.dir/branch_and_bound.cpp.o"
  "CMakeFiles/wdm_ilp.dir/branch_and_bound.cpp.o.d"
  "CMakeFiles/wdm_ilp.dir/model.cpp.o"
  "CMakeFiles/wdm_ilp.dir/model.cpp.o.d"
  "CMakeFiles/wdm_ilp.dir/simplex.cpp.o"
  "CMakeFiles/wdm_ilp.dir/simplex.cpp.o.d"
  "libwdm_ilp.a"
  "libwdm_ilp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wdm_ilp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
