file(REMOVE_RECURSE
  "libwdm_ilp.a"
)
