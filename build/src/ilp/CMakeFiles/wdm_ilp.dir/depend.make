# Empty dependencies file for wdm_ilp.
# This may be replaced when dependencies are built.
