# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(wdmtool_audit "/root/repo/build/tools/wdmtool" "audit" "nsfnet")
set_tests_properties(wdmtool_audit PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(wdmtool_route "/root/repo/build/tools/wdmtool" "route" "nsfnet" "0" "13" "-r" "loadcost")
set_tests_properties(wdmtool_route PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(wdmtool_route_exact "/root/repo/build/tools/wdmtool" "route" "ring6" "0" "3" "-r" "exact")
set_tests_properties(wdmtool_route_exact PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(wdmtool_simulate "/root/repo/build/tools/wdmtool" "simulate" "nsfnet" "--erlang" "5" "--duration" "5" "--replicas" "2")
set_tests_properties(wdmtool_simulate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(wdmtool_dot "/root/repo/build/tools/wdmtool" "dot" "eon")
set_tests_properties(wdmtool_dot PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(wdmtool_usage "/root/repo/build/tools/wdmtool")
set_tests_properties(wdmtool_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
