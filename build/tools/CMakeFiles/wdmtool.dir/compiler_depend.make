# Empty compiler generated dependencies file for wdmtool.
# This may be replaced when dependencies are built.
