file(REMOVE_RECURSE
  "CMakeFiles/wdmtool.dir/wdmtool.cpp.o"
  "CMakeFiles/wdmtool.dir/wdmtool.cpp.o.d"
  "wdmtool"
  "wdmtool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wdmtool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
