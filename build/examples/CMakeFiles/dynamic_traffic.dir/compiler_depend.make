# Empty compiler generated dependencies file for dynamic_traffic.
# This may be replaced when dependencies are built.
