file(REMOVE_RECURSE
  "CMakeFiles/dynamic_traffic.dir/dynamic_traffic.cpp.o"
  "CMakeFiles/dynamic_traffic.dir/dynamic_traffic.cpp.o.d"
  "dynamic_traffic"
  "dynamic_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
