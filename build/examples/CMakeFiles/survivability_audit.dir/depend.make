# Empty dependencies file for survivability_audit.
# This may be replaced when dependencies are built.
