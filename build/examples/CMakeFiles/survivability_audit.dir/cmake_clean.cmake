file(REMOVE_RECURSE
  "CMakeFiles/survivability_audit.dir/survivability_audit.cpp.o"
  "CMakeFiles/survivability_audit.dir/survivability_audit.cpp.o.d"
  "survivability_audit"
  "survivability_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/survivability_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
