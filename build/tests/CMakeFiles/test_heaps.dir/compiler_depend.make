# Empty compiler generated dependencies file for test_heaps.
# This may be replaced when dependencies are built.
