file(REMOVE_RECURSE
  "CMakeFiles/test_heaps.dir/test_heaps.cpp.o"
  "CMakeFiles/test_heaps.dir/test_heaps.cpp.o.d"
  "test_heaps"
  "test_heaps.pdb"
  "test_heaps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_heaps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
