file(REMOVE_RECURSE
  "CMakeFiles/test_semilightpath.dir/test_semilightpath.cpp.o"
  "CMakeFiles/test_semilightpath.dir/test_semilightpath.cpp.o.d"
  "test_semilightpath"
  "test_semilightpath.pdb"
  "test_semilightpath[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_semilightpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
