# Empty dependencies file for test_semilightpath.
# This may be replaced when dependencies are built.
