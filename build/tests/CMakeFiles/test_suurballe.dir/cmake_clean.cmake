file(REMOVE_RECURSE
  "CMakeFiles/test_suurballe.dir/test_suurballe.cpp.o"
  "CMakeFiles/test_suurballe.dir/test_suurballe.cpp.o.d"
  "test_suurballe"
  "test_suurballe.pdb"
  "test_suurballe[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_suurballe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
