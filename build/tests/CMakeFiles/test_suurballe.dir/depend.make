# Empty dependencies file for test_suurballe.
# This may be replaced when dependencies are built.
