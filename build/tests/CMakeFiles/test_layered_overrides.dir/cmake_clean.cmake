file(REMOVE_RECURSE
  "CMakeFiles/test_layered_overrides.dir/test_layered_overrides.cpp.o"
  "CMakeFiles/test_layered_overrides.dir/test_layered_overrides.cpp.o.d"
  "test_layered_overrides"
  "test_layered_overrides.pdb"
  "test_layered_overrides[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_layered_overrides.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
