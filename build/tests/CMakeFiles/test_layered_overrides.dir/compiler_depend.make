# Empty compiler generated dependencies file for test_layered_overrides.
# This may be replaced when dependencies are built.
