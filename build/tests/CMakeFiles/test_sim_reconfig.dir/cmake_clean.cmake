file(REMOVE_RECURSE
  "CMakeFiles/test_sim_reconfig.dir/test_sim_reconfig.cpp.o"
  "CMakeFiles/test_sim_reconfig.dir/test_sim_reconfig.cpp.o.d"
  "test_sim_reconfig"
  "test_sim_reconfig.pdb"
  "test_sim_reconfig[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_reconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
