# Empty dependencies file for test_sim_reconfig.
# This may be replaced when dependencies are built.
