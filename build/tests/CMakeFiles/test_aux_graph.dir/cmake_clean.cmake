file(REMOVE_RECURSE
  "CMakeFiles/test_aux_graph.dir/test_aux_graph.cpp.o"
  "CMakeFiles/test_aux_graph.dir/test_aux_graph.cpp.o.d"
  "test_aux_graph"
  "test_aux_graph.pdb"
  "test_aux_graph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aux_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
