# Empty compiler generated dependencies file for test_aux_graph.
# This may be replaced when dependencies are built.
