# Empty compiler generated dependencies file for test_shared_backup.
# This may be replaced when dependencies are built.
