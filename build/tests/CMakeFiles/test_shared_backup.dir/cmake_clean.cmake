file(REMOVE_RECURSE
  "CMakeFiles/test_shared_backup.dir/test_shared_backup.cpp.o"
  "CMakeFiles/test_shared_backup.dir/test_shared_backup.cpp.o.d"
  "test_shared_backup"
  "test_shared_backup.pdb"
  "test_shared_backup[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shared_backup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
