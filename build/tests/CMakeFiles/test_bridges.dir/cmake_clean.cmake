file(REMOVE_RECURSE
  "CMakeFiles/test_bridges.dir/test_bridges.cpp.o"
  "CMakeFiles/test_bridges.dir/test_bridges.cpp.o.d"
  "test_bridges"
  "test_bridges.pdb"
  "test_bridges[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bridges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
