file(REMOVE_RECURSE
  "CMakeFiles/test_ilp_restricted.dir/test_ilp_restricted.cpp.o"
  "CMakeFiles/test_ilp_restricted.dir/test_ilp_restricted.cpp.o.d"
  "test_ilp_restricted"
  "test_ilp_restricted.pdb"
  "test_ilp_restricted[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ilp_restricted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
