# Empty dependencies file for test_ilp_restricted.
# This may be replaced when dependencies are built.
