file(REMOVE_RECURSE
  "CMakeFiles/test_routers.dir/test_routers.cpp.o"
  "CMakeFiles/test_routers.dir/test_routers.cpp.o.d"
  "test_routers"
  "test_routers.pdb"
  "test_routers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_routers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
