# Empty dependencies file for test_routers.
# This may be replaced when dependencies are built.
