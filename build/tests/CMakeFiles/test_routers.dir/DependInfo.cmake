
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_routers.cpp" "tests/CMakeFiles/test_routers.dir/test_routers.cpp.o" "gcc" "tests/CMakeFiles/test_routers.dir/test_routers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topology/CMakeFiles/wdm_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wdm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rwa/CMakeFiles/wdm_rwa.dir/DependInfo.cmake"
  "/root/repo/build/src/wdm/CMakeFiles/wdm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/wdm_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/ilp/CMakeFiles/wdm_ilp.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/wdm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
