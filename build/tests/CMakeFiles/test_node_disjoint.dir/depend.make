# Empty dependencies file for test_node_disjoint.
# This may be replaced when dependencies are built.
