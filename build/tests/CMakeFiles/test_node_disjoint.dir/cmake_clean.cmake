file(REMOVE_RECURSE
  "CMakeFiles/test_node_disjoint.dir/test_node_disjoint.cpp.o"
  "CMakeFiles/test_node_disjoint.dir/test_node_disjoint.cpp.o.d"
  "test_node_disjoint"
  "test_node_disjoint.pdb"
  "test_node_disjoint[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_node_disjoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
