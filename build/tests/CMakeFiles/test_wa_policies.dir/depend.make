# Empty dependencies file for test_wa_policies.
# This may be replaced when dependencies are built.
