file(REMOVE_RECURSE
  "CMakeFiles/test_wa_policies.dir/test_wa_policies.cpp.o"
  "CMakeFiles/test_wa_policies.dir/test_wa_policies.cpp.o.d"
  "test_wa_policies"
  "test_wa_policies.pdb"
  "test_wa_policies[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wa_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
