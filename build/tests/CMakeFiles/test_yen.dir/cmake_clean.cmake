file(REMOVE_RECURSE
  "CMakeFiles/test_yen.dir/test_yen.cpp.o"
  "CMakeFiles/test_yen.dir/test_yen.cpp.o.d"
  "test_yen"
  "test_yen.pdb"
  "test_yen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_yen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
