# Empty dependencies file for bench_ilp.
# This may be replaced when dependencies are built.
