file(REMOVE_RECURSE
  "CMakeFiles/bench_ilp.dir/bench_ilp.cpp.o"
  "CMakeFiles/bench_ilp.dir/bench_ilp.cpp.o.d"
  "bench_ilp"
  "bench_ilp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ilp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
