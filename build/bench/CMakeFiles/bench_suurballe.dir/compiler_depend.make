# Empty compiler generated dependencies file for bench_suurballe.
# This may be replaced when dependencies are built.
