file(REMOVE_RECURSE
  "CMakeFiles/bench_suurballe.dir/bench_suurballe.cpp.o"
  "CMakeFiles/bench_suurballe.dir/bench_suurballe.cpp.o.d"
  "bench_suurballe"
  "bench_suurballe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_suurballe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
