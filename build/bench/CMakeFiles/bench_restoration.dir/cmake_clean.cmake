file(REMOVE_RECURSE
  "CMakeFiles/bench_restoration.dir/bench_restoration.cpp.o"
  "CMakeFiles/bench_restoration.dir/bench_restoration.cpp.o.d"
  "bench_restoration"
  "bench_restoration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_restoration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
