file(REMOVE_RECURSE
  "CMakeFiles/bench_mincog.dir/bench_mincog.cpp.o"
  "CMakeFiles/bench_mincog.dir/bench_mincog.cpp.o.d"
  "bench_mincog"
  "bench_mincog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mincog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
