# Empty dependencies file for bench_mincog.
# This may be replaced when dependencies are built.
