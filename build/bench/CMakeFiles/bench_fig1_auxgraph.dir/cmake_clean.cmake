file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_auxgraph.dir/bench_fig1_auxgraph.cpp.o"
  "CMakeFiles/bench_fig1_auxgraph.dir/bench_fig1_auxgraph.cpp.o.d"
  "bench_fig1_auxgraph"
  "bench_fig1_auxgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_auxgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
