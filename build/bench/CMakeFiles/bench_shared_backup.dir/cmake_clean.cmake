file(REMOVE_RECURSE
  "CMakeFiles/bench_shared_backup.dir/bench_shared_backup.cpp.o"
  "CMakeFiles/bench_shared_backup.dir/bench_shared_backup.cpp.o.d"
  "bench_shared_backup"
  "bench_shared_backup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_shared_backup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
