# Empty dependencies file for bench_shared_backup.
# This may be replaced when dependencies are built.
